//! The `BENCH_*.json` snapshot codec — schema, serializer, parser, validator.
//!
//! Each PR commits one performance snapshot (`BENCH_clocked.json` at the repository
//! root) recorded by the `perf_snapshot` binary, so the scheduler's throughput
//! trajectory is reviewable alongside the code that moved it. The workspace's `serde`
//! is a no-op shim (the container builds without a registry), so the JSON round-trip
//! here is hand-rolled: a minimal JSON value model, a recursive-descent parser, a
//! pretty-printer, and a typed [`BenchSnapshot`] layer with schema validation on top.
//!
//! The schema is deliberately small and flat:
//!
//! ```json
//! {
//!   "schema": 2,
//!   "name": "cdas-perf-snapshot",
//!   "workload": { "jobs": 16, "questions_per_job": 12, ... },
//!   "records": [
//!     { "label": "heap-1shard", "discovery": "heap", "mode": "clocked",
//!       "journal": "off", "shards": 1, "wall_seconds": 0.021, "ticks": 214,
//!       "questions": 192, "events_per_sec": 10190.4, "questions_per_sec": 9142.8,
//!       "p50_verdict_latency_min": 9.1, "p99_verdict_latency_min": 31.7,
//!       "makespan_min": 47.8 },
//!     ...
//!   ]
//! }
//! ```
//!
//! **Metric definitions.** `ticks` counts scheduler events (every tick of a clocked run
//! advances simulated time to the next answer arrival), so `events_per_sec` =
//! `ticks / wall_seconds` measures raw event-loop throughput — the number the
//! event-heap refactor exists to move. `questions_per_sec` = resolved real questions
//! per host second. Verdict latency is per HIT, in *simulated* minutes: a job's batches
//! run back to back, so one HIT's latency is the span from its dispatch to the job's
//! next dispatch (or the job's completion, for its last HIT); `p50`/`p99` rank those
//! spans fleet-wide.

use std::fmt::Write as _;

/// Current snapshot schema version. Bump when the shape of the JSON changes.
/// Version history: 1 — initial shape; 2 — per-record `journal` column ("on"/"off",
/// whether the run appended to a write-ahead event journal while executing).
pub const SCHEMA_VERSION: u64 = 2;

/// The `name` field every snapshot carries, doubling as a file-format magic.
pub const SNAPSHOT_NAME: &str = "cdas-perf-snapshot";

/// A minimal JSON value: everything the snapshot schema needs, nothing more.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (no escape sequences beyond `\"`, `\\`, `\n`, `\t`, `\r`, `\/`).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved (snapshots diff cleanly).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Numbers print as integers when they are one (ticks, shard counts), with enough
/// digits to round-trip otherwise.
fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so boundaries hold).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// The fleet the snapshot was measured on — enough to re-run the exact workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchWorkload {
    /// Concurrent analytics jobs.
    pub jobs: u64,
    /// Real (scored) questions per job.
    pub questions_per_job: u64,
    /// Gold questions per job.
    pub gold_per_job: u64,
    /// Simulated worker pool size.
    pub pool: u64,
    /// Workers leased per HIT.
    pub workers_per_hit: u64,
    /// Questions per HIT batch.
    pub batch_size: u64,
    /// Mean simulated worker accuracy.
    pub accuracy: f64,
    /// Mean of the exponential answer-latency model, simulated minutes.
    pub latency_mean_minutes: f64,
    /// Crowd + scheduler seed.
    pub seed: u64,
}

/// One measured configuration: a discovery mode at a shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Human-readable row id, e.g. `heap-4shard`.
    pub label: String,
    /// Arrival discovery: `"heap"` or `"scan"`.
    pub discovery: String,
    /// Execution mode: `"clocked"` or `"parallel"`.
    pub mode: String,
    /// Whether the run wrote a write-ahead event journal: `"on"` or `"off"`.
    pub journal: String,
    /// Shard (OS thread) count — 1 for `clocked`.
    pub shards: u64,
    /// Host seconds for the measured run (best of the recorded repeats).
    pub wall_seconds: f64,
    /// Scheduler events (clocked ticks) in the run.
    pub ticks: u64,
    /// Real questions resolved.
    pub questions: u64,
    /// `ticks / wall_seconds`.
    pub events_per_sec: f64,
    /// `questions / wall_seconds`.
    pub questions_per_sec: f64,
    /// Median per-HIT verdict latency, simulated minutes.
    pub p50_verdict_latency_min: f64,
    /// 99th-percentile per-HIT verdict latency, simulated minutes.
    pub p99_verdict_latency_min: f64,
    /// Simulated minutes from fleet start to the last batch's completion.
    pub makespan_min: f64,
}

/// A full snapshot: schema header, workload, and one record per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// The workload all records share.
    pub workload: BenchWorkload,
    /// The measured configurations.
    pub records: Vec<BenchRecord>,
}

fn field_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field {key:?}"))
}

fn field_uint(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let n = field_num(obj, key, ctx)?;
    if n >= 0.0 && n.fract() == 0.0 {
        Ok(n as u64)
    } else {
        Err(format!(
            "{ctx}: field {key:?} must be a non-negative integer"
        ))
    }
}

fn field_str(obj: &Json, key: &str, ctx: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing or non-string field {key:?}"))
}

impl BenchSnapshot {
    /// Serialize to the committed pretty-JSON form.
    pub fn to_json(&self) -> String {
        let workload = Json::Obj(vec![
            ("jobs".into(), Json::Num(self.workload.jobs as f64)),
            (
                "questions_per_job".into(),
                Json::Num(self.workload.questions_per_job as f64),
            ),
            (
                "gold_per_job".into(),
                Json::Num(self.workload.gold_per_job as f64),
            ),
            ("pool".into(), Json::Num(self.workload.pool as f64)),
            (
                "workers_per_hit".into(),
                Json::Num(self.workload.workers_per_hit as f64),
            ),
            (
                "batch_size".into(),
                Json::Num(self.workload.batch_size as f64),
            ),
            ("accuracy".into(), Json::Num(self.workload.accuracy)),
            (
                "latency_mean_minutes".into(),
                Json::Num(self.workload.latency_mean_minutes),
            ),
            ("seed".into(), Json::Num(self.workload.seed as f64)),
        ]);
        let records = self
            .records
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(r.label.clone())),
                    ("discovery".into(), Json::Str(r.discovery.clone())),
                    ("mode".into(), Json::Str(r.mode.clone())),
                    ("journal".into(), Json::Str(r.journal.clone())),
                    ("shards".into(), Json::Num(r.shards as f64)),
                    ("wall_seconds".into(), Json::Num(r.wall_seconds)),
                    ("ticks".into(), Json::Num(r.ticks as f64)),
                    ("questions".into(), Json::Num(r.questions as f64)),
                    ("events_per_sec".into(), Json::Num(r.events_per_sec)),
                    ("questions_per_sec".into(), Json::Num(r.questions_per_sec)),
                    (
                        "p50_verdict_latency_min".into(),
                        Json::Num(r.p50_verdict_latency_min),
                    ),
                    (
                        "p99_verdict_latency_min".into(),
                        Json::Num(r.p99_verdict_latency_min),
                    ),
                    ("makespan_min".into(), Json::Num(r.makespan_min)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Num(self.schema as f64)),
            ("name".into(), Json::Str(SNAPSHOT_NAME.into())),
            ("workload".into(), workload),
            ("records".into(), Json::Arr(records)),
        ])
        .to_pretty()
    }

    /// Parse and validate a snapshot document.
    pub fn from_json(text: &str) -> Result<BenchSnapshot, String> {
        let doc = Json::parse(text)?;
        let schema = field_uint(&doc, "schema", "snapshot")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let name = field_str(&doc, "name", "snapshot")?;
        if name != SNAPSHOT_NAME {
            return Err(format!("not a perf snapshot: name is {name:?}"));
        }
        let w = doc
            .get("workload")
            .ok_or("snapshot: missing field \"workload\"")?;
        let workload = BenchWorkload {
            jobs: field_uint(w, "jobs", "workload")?,
            questions_per_job: field_uint(w, "questions_per_job", "workload")?,
            gold_per_job: field_uint(w, "gold_per_job", "workload")?,
            pool: field_uint(w, "pool", "workload")?,
            workers_per_hit: field_uint(w, "workers_per_hit", "workload")?,
            batch_size: field_uint(w, "batch_size", "workload")?,
            accuracy: field_num(w, "accuracy", "workload")?,
            latency_mean_minutes: field_num(w, "latency_mean_minutes", "workload")?,
            seed: field_uint(w, "seed", "workload")?,
        };
        let Some(Json::Arr(rows)) = doc.get("records") else {
            return Err("snapshot: missing or non-array field \"records\"".into());
        };
        let mut records = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("records[{i}]");
            records.push(BenchRecord {
                label: field_str(row, "label", &ctx)?,
                discovery: field_str(row, "discovery", &ctx)?,
                mode: field_str(row, "mode", &ctx)?,
                journal: field_str(row, "journal", &ctx)?,
                shards: field_uint(row, "shards", &ctx)?,
                wall_seconds: field_num(row, "wall_seconds", &ctx)?,
                ticks: field_uint(row, "ticks", &ctx)?,
                questions: field_uint(row, "questions", &ctx)?,
                events_per_sec: field_num(row, "events_per_sec", &ctx)?,
                questions_per_sec: field_num(row, "questions_per_sec", &ctx)?,
                p50_verdict_latency_min: field_num(row, "p50_verdict_latency_min", &ctx)?,
                p99_verdict_latency_min: field_num(row, "p99_verdict_latency_min", &ctx)?,
                makespan_min: field_num(row, "makespan_min", &ctx)?,
            });
        }
        let snapshot = BenchSnapshot {
            schema,
            workload,
            records,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Semantic checks beyond shape: labels unique, enums in range, metrics coherent.
    pub fn validate(&self) -> Result<(), String> {
        if self.records.is_empty() {
            return Err("snapshot has no records".into());
        }
        let mut labels: Vec<&str> = self.records.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != self.records.len() {
            return Err("snapshot record labels are not unique".into());
        }
        for r in &self.records {
            let ctx = &r.label;
            if r.discovery != "heap" && r.discovery != "scan" {
                return Err(format!("{ctx}: discovery must be \"heap\" or \"scan\""));
            }
            if r.mode != "clocked" && r.mode != "parallel" {
                return Err(format!("{ctx}: mode must be \"clocked\" or \"parallel\""));
            }
            if r.journal != "on" && r.journal != "off" {
                return Err(format!("{ctx}: journal must be \"on\" or \"off\""));
            }
            if r.mode == "clocked" && r.shards != 1 {
                return Err(format!("{ctx}: a clocked run has exactly 1 shard"));
            }
            if r.shards == 0 {
                return Err(format!("{ctx}: shards must be positive"));
            }
            if r.wall_seconds <= 0.0 {
                return Err(format!("{ctx}: wall_seconds must be positive"));
            }
            if r.ticks == 0 || r.questions == 0 {
                return Err(format!("{ctx}: an empty run is not a benchmark"));
            }
            let events = r.ticks as f64 / r.wall_seconds;
            if (events - r.events_per_sec).abs() > events * 1e-6 {
                return Err(format!("{ctx}: events_per_sec != ticks / wall_seconds"));
            }
            let questions = r.questions as f64 / r.wall_seconds;
            if (questions - r.questions_per_sec).abs() > questions * 1e-6 {
                return Err(format!(
                    "{ctx}: questions_per_sec != questions / wall_seconds"
                ));
            }
            if r.p50_verdict_latency_min > r.p99_verdict_latency_min {
                return Err(format!("{ctx}: p50 latency exceeds p99"));
            }
            if r.p99_verdict_latency_min > r.makespan_min {
                return Err(format!("{ctx}: p99 latency exceeds the makespan"));
            }
        }
        Ok(())
    }

    /// The record with the given label, if present.
    pub fn record(&self, label: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.label == label)
    }
}

/// Rank-based percentile (nearest-rank on a sorted copy); `q` in `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            schema: SCHEMA_VERSION,
            workload: BenchWorkload {
                jobs: 16,
                questions_per_job: 12,
                gold_per_job: 4,
                pool: 96,
                workers_per_hit: 5,
                batch_size: 4,
                accuracy: 0.85,
                latency_mean_minutes: 5.0,
                seed: 42,
            },
            records: vec![
                BenchRecord {
                    label: "scan-1shard".into(),
                    discovery: "scan".into(),
                    mode: "clocked".into(),
                    journal: "off".into(),
                    shards: 1,
                    wall_seconds: 0.04,
                    ticks: 200,
                    questions: 192,
                    events_per_sec: 200.0 / 0.04,
                    questions_per_sec: 192.0 / 0.04,
                    p50_verdict_latency_min: 9.5,
                    p99_verdict_latency_min: 30.25,
                    makespan_min: 48.125,
                },
                BenchRecord {
                    label: "heap-2shard".into(),
                    discovery: "heap".into(),
                    mode: "parallel".into(),
                    journal: "on".into(),
                    shards: 2,
                    wall_seconds: 0.015,
                    ticks: 210,
                    questions: 192,
                    events_per_sec: 210.0 / 0.015,
                    questions_per_sec: 192.0 / 0.015,
                    p50_verdict_latency_min: 8.0,
                    p99_verdict_latency_min: 28.0,
                    makespan_min: 40.0,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let original = sample();
        let text = original.to_json();
        let parsed = BenchSnapshot::from_json(&text).unwrap();
        assert_eq!(parsed, original);
        // And the rendered form is stable (idempotent re-serialization).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parser_handles_the_grammar() {
        let doc = Json::parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null, "d": "x\n\"yA"}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
            ]))
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("nested")),
            Some(&Json::Bool(true))
        );
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d").and_then(Json::as_str), Some("x\n\"yA"));
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"open\": ").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn validation_rejects_broken_snapshots() {
        let ok = sample();

        let mut wrong_schema = ok.clone();
        wrong_schema.schema = SCHEMA_VERSION + 1;
        assert!(BenchSnapshot::from_json(&wrong_schema.to_json())
            .unwrap_err()
            .contains("schema"));

        let mut duplicate = ok.clone();
        duplicate.records[1].label = duplicate.records[0].label.clone();
        assert!(duplicate.validate().unwrap_err().contains("unique"));

        let mut bad_discovery = ok.clone();
        bad_discovery.records[0].discovery = "magic".into();
        assert!(bad_discovery.validate().unwrap_err().contains("discovery"));

        let mut bad_journal = ok.clone();
        bad_journal.records[0].journal = "maybe".into();
        assert!(bad_journal.validate().unwrap_err().contains("journal"));

        let mut clocked_sharded = ok.clone();
        clocked_sharded.records[0].shards = 4;
        assert!(clocked_sharded.validate().unwrap_err().contains("1 shard"));

        let mut incoherent = ok.clone();
        incoherent.records[0].events_per_sec *= 2.0;
        assert!(incoherent
            .validate()
            .unwrap_err()
            .contains("events_per_sec"));

        let mut inverted = ok.clone();
        inverted.records[0].p50_verdict_latency_min = 99.0;
        assert!(inverted.validate().unwrap_err().contains("p50"));

        let mut not_a_snapshot = ok.clone();
        not_a_snapshot.records.clear();
        assert!(not_a_snapshot.validate().unwrap_err().contains("records"));

        assert!(BenchSnapshot::from_json("{\"name\": \"other\"}").is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.5), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
