//! Figure 12 — effect of early termination on the number of workers actually consumed, per
//! termination strategy, against the prediction model's estimate (the "red line").

use cdas_core::online::{OnlineProcessor, TerminationStrategy};
use cdas_core::prediction::PredictionModel;

use crate::{fmt, paper_pool, rng, sentiment_question, simulate_observation, Table};

const TRIALS: usize = 200;

/// Measure the mean number of answers consumed per strategy and required accuracy.
pub fn run() -> Table {
    let pool = paper_pool(12);
    let mu = pool.true_mean_accuracy(&sentiment_question(0, 0.0));
    let prediction = PredictionModel::new(mu).unwrap();
    let mut r = rng(1212);
    let mut table = Table::new(
        format!("Figure 12 — workers consumed with early termination (mu = {mu:.3})"),
        &["required", "predicted n", "MinExp", "MinMax", "ExpMax"],
    );
    let mut c = 0.65;
    while c <= 0.951 {
        let n = prediction.refined_workers(c).unwrap() as usize;
        let mut consumed = [0usize; 3];
        for i in 0..TRIALS {
            let question = sentiment_question(i as u64, if i % 6 == 0 { 0.5 } else { 0.05 });
            let votes = simulate_observation(&pool, &question, n, &mut r)
                .votes()
                .to_vec();
            for (k, strategy) in [
                TerminationStrategy::MinExp,
                TerminationStrategy::MinMax,
                TerminationStrategy::ExpMax,
            ]
            .into_iter()
            .enumerate()
            {
                let mut processor = OnlineProcessor::new(n, mu, strategy)
                    .unwrap()
                    .with_domain_size(3);
                let outcome = processor
                    .run_until_termination(votes.iter().cloned())
                    .unwrap();
                consumed[k] += outcome.answers_received;
            }
        }
        table.push_row(vec![
            format!("{c:.2}"),
            n.to_string(),
            fmt(consumed[0] as f64 / TRIALS as f64),
            fmt(consumed[1] as f64 / TRIALS as f64),
            fmt(consumed[2] as f64 / TRIALS as f64),
        ]);
        c += 0.05;
    }
    table
}
