//! Figure 13 — effect of early termination on the *real accuracy*, per termination
//! strategy, against the user-required accuracy.

use cdas_core::online::{OnlineProcessor, TerminationStrategy};
use cdas_core::prediction::PredictionModel;

use crate::{fmt, paper_pool, rng, sentiment_question, simulate_observation, Table};

const TRIALS: usize = 200;

/// Measure the accuracy of the early-terminated result per strategy and required accuracy.
pub fn run() -> Table {
    let pool = paper_pool(13);
    let mu = pool.true_mean_accuracy(&sentiment_question(0, 0.0));
    let prediction = PredictionModel::new(mu).unwrap();
    let mut r = rng(1313);
    let mut table = Table::new(
        format!("Figure 13 — real accuracy with early termination (mu = {mu:.3})"),
        &["required", "MinExp", "MinMax", "ExpMax"],
    );
    let mut c = 0.65;
    while c <= 0.951 {
        let n = prediction.refined_workers(c).unwrap() as usize;
        let mut correct = [0usize; 3];
        for i in 0..TRIALS {
            let question = sentiment_question(i as u64, if i % 8 == 0 { 0.4 } else { 0.05 });
            let votes = simulate_observation(&pool, &question, n, &mut r)
                .votes()
                .to_vec();
            for (k, strategy) in [
                TerminationStrategy::MinExp,
                TerminationStrategy::MinMax,
                TerminationStrategy::ExpMax,
            ]
            .into_iter()
            .enumerate()
            {
                let mut processor = OnlineProcessor::new(n, mu, strategy)
                    .unwrap()
                    .with_domain_size(3);
                let outcome = processor
                    .run_until_termination(votes.iter().cloned())
                    .unwrap();
                if outcome.best.map(|(l, _)| l) == Some(question.ground_truth.clone()) {
                    correct[k] += 1;
                }
            }
        }
        table.push_row(vec![
            format!("{c:.2}"),
            fmt(correct[0] as f64 / TRIALS as f64),
            fmt(correct[1] as f64 / TRIALS as f64),
            fmt(correct[2] as f64 / TRIALS as f64),
        ]);
        c += 0.05;
    }
    table
}
