//! Figure 11 — effect of the answer-arrival sequence: the accuracy of the approximate
//! result of one HIT (50 reviews, 30 workers) as answers arrive, under four different
//! arrival permutations of the same answer set.

use cdas_core::types::Observation;
use cdas_core::types::Vote;
use cdas_core::verification::confidence::answer_confidences;
use rand::seq::SliceRandom;

use crate::{fmt, paper_pool, rng, sentiment_question, simulate_observation, Table};

const REVIEWS: usize = 50;
const WORKERS: usize = 30;

/// Replay the same HIT under four arrival orders and report accuracy after every 5 answers.
pub fn run() -> Table {
    let pool = paper_pool(11);
    let mut r = rng(1111);
    // The full answer sets: per review, 30 votes.
    let questions: Vec<_> = (0..REVIEWS)
        .map(|i| sentiment_question(i as u64, if i % 6 == 0 { 0.5 } else { 0.05 }))
        .collect();
    let answer_sets: Vec<Vec<Vote>> = questions
        .iter()
        .map(|q| {
            simulate_observation(&pool, q, WORKERS, &mut r)
                .votes()
                .to_vec()
        })
        .collect();

    let mut table = Table::new(
        "Figure 11 — accuracy of the approximate result vs answers arrived, per arrival sequence",
        &[
            "answers",
            "sequence 1",
            "sequence 2",
            "sequence 3",
            "sequence 4",
        ],
    );
    // Four permutations of the arrival order (sequence 1 is the original order).
    let mut orders: Vec<Vec<Vec<Vote>>> = Vec::new();
    for s in 0..4u64 {
        let mut perm_rng = rng(2000 + s);
        let permuted: Vec<Vec<Vote>> = answer_sets
            .iter()
            .map(|votes| {
                let mut v = votes.clone();
                if s > 0 {
                    v.shuffle(&mut perm_rng);
                }
                v
            })
            .collect();
        orders.push(permuted);
    }

    for arrived in (5..=WORKERS).step_by(5) {
        let mut row = vec![arrived.to_string()];
        for order in &orders {
            let mut correct = 0usize;
            for (q, votes) in questions.iter().zip(order.iter()) {
                let partial = Observation::from_votes(votes[..arrived].to_vec());
                let ranking = answer_confidences(&partial, 3);
                if ranking.first().map(|(l, _)| l) == Some(&q.ground_truth) {
                    correct += 1;
                }
            }
            row.push(fmt(correct as f64 / REVIEWS as f64));
        }
        table.push_row(row);
    }
    table
}
