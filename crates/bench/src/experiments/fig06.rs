//! Figure 6 — number of workers required: the conservative (Chernoff) estimate versus the
//! binary-search refinement, as the user-required accuracy grows from 0.65 to 0.99.

use cdas_core::prediction::PredictionModel;

use crate::{paper_pool, sentiment_question, Table};

/// Run the worker-estimate comparison using the paper pool's true mean accuracy.
pub fn run() -> Table {
    let pool = paper_pool(1);
    let mu = pool.true_mean_accuracy(&sentiment_question(0, 0.0));
    let model = PredictionModel::new(mu).expect("paper pool mean accuracy exceeds 0.5");
    let mut table = Table::new(
        format!("Figure 6 — number of workers required (mu = {mu:.3})"),
        &["required accuracy", "conservative", "binary search"],
    );
    let mut c = 0.65;
    while c <= 0.991 {
        table.push_row(vec![
            format!("{c:.2}"),
            model.conservative_workers(c).unwrap().to_string(),
            model.refined_workers(c).unwrap().to_string(),
        ]);
        c += 0.05;
    }
    // The paper's right-most point.
    table.push_row(vec![
        "0.99".into(),
        model.conservative_workers(0.99).unwrap().to_string(),
        model.refined_workers(0.99).unwrap().to_string(),
    ]);
    table
}
