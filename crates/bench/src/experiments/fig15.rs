//! Figure 15 — effect of the sampling rate on the worker-accuracy estimates: mean estimated
//! accuracy and mean absolute error against the 100 %-sampling reference.

use std::collections::BTreeMap;

use cdas_core::sampling::{SamplingEstimator, SamplingPlan};
use cdas_core::types::QuestionId;

use crate::{fmt, paper_pool, rng, sentiment_question, Table};

const BATCH: usize = 100;
const WORKERS: usize = 40;

/// Estimate worker accuracies at several sampling rates and compare to full sampling.
pub fn run() -> Table {
    let pool = paper_pool(15);
    let mut r = rng(1515);
    // Every worker answers all 100 questions of a calibration batch once.
    let questions: Vec<_> = (0..BATCH)
        .map(|i| sentiment_question(i as u64, 0.05))
        .collect();
    let workers: Vec<_> = pool.assign(WORKERS, &mut r).into_iter().cloned().collect();
    let answers: Vec<Vec<cdas_core::types::Label>> = workers
        .iter()
        .map(|w| questions.iter().map(|q| w.answer(q, &mut r)).collect())
        .collect();

    // Reference: estimates from answering every question (100 % sampling).
    let estimate_at = |rate: f64| -> BTreeMap<cdas_core::types::WorkerId, f64> {
        let plan = SamplingPlan::new(BATCH, rate).unwrap();
        let mut estimator = SamplingEstimator::new();
        for (w, row) in workers.iter().zip(answers.iter()) {
            for (i, answer) in row.iter().enumerate() {
                if plan.is_gold(i) {
                    estimator.record(
                        w.id,
                        QuestionId(i as u64),
                        answer,
                        &questions[i].ground_truth,
                    );
                }
            }
        }
        workers
            .iter()
            .filter_map(|w| estimator.accuracy_of(w.id).map(|a| (w.id, a)))
            .collect()
    };
    let reference = estimate_at(1.0);

    let mut table = Table::new(
        format!("Figure 15 — effect of sampling rate on worker-accuracy estimation ({WORKERS} workers, B = {BATCH})"),
        &["sampling rate", "mean accuracy", "mean abs error"],
    );
    for rate in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let estimates = estimate_at(rate);
        let mean = estimates.values().sum::<f64>() / estimates.len().max(1) as f64;
        let err = estimates
            .iter()
            .map(|(w, a)| (a - reference.get(w).copied().unwrap_or(*a)).abs())
            .sum::<f64>()
            / estimates.len().max(1) as f64;
        table.push_row(vec![format!("{:.0}%", rate * 100.0), fmt(mean), fmt(err)]);
    }
    table
}
