//! Figure 9 — percentage of reviews for which the voting models fail to produce an answer,
//! as the number of workers grows.

use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;

use crate::{paper_pool, rng, sentiment_question, simulate_observation, Table};

const TRIALS: usize = 300;

/// Measure the no-answer ratio of both voting models per worker count.
pub fn run() -> Table {
    let pool = paper_pool(9);
    let mut r = rng(99);
    let mut table = Table::new(
        format!("Figure 9 — no-answer ratio vs number of workers ({TRIALS} reviews per point)"),
        &["workers", "Majority-Voting", "Half-Voting"],
    );
    for n in (1..=29usize).step_by(2) {
        let mut undecided = [0usize; 2];
        for i in 0..TRIALS {
            // The review mix includes the hard (ambiguous) fraction the paper blames for
            // persistent ties.
            let question = sentiment_question(i as u64, if i % 5 == 0 { 0.6 } else { 0.1 });
            let observation = simulate_observation(&pool, &question, n, &mut r);
            if !MajorityVoting::new()
                .decide(&observation)
                .unwrap()
                .is_accepted()
            {
                undecided[0] += 1;
            }
            if !HalfVoting::new(n)
                .decide(&observation)
                .unwrap()
                .is_accepted()
            {
                undecided[1] += 1;
            }
        }
        table.push_row(vec![
            n.to_string(),
            format!("{:.1}%", undecided[0] as f64 / TRIALS as f64 * 100.0),
            format!("{:.1}%", undecided[1] as f64 / TRIALS as f64 * 100.0),
        ]);
    }
    table
}
