//! Table 3/4 of the paper: the worked verification example — five workers with accuracies
//! 0.54 / 0.31 / 0.49 / 0.73 / 0.46 answer pos / pos / neu / neg / pos; voting picks "pos",
//! the probability-based verification model picks "neg".

use cdas_core::types::{Label, Observation, Vote, WorkerId};
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;

use crate::{fmt, Table};

/// Run the worked example and report every model's scores and accepted answer.
pub fn run() -> Table {
    let observation = Observation::from_votes(vec![
        Vote::new(WorkerId(1), Label::from("pos"), 0.54),
        Vote::new(WorkerId(2), Label::from("pos"), 0.31),
        Vote::new(WorkerId(3), Label::from("neu"), 0.49),
        Vote::new(WorkerId(4), Label::from("neg"), 0.73),
        Vote::new(WorkerId(5), Label::from("pos"), 0.46),
    ]);
    let mut table = Table::new(
        "Table 4 — results of the verification models on the Green Lantern example",
        &["model", "pos", "neu", "neg", "answer"],
    );

    let tally = observation.tally();
    let count = |l: &str| tally.get(&Label::from(l)).copied().unwrap_or(0).to_string();
    let voting_answer = |v: &dyn Verifier| {
        v.decide(&observation)
            .unwrap()
            .label()
            .map(|l| l.as_str().to_string())
            .unwrap_or_else(|| "no answer".to_string())
    };
    table.push_row(vec![
        "Half-Voting".into(),
        count("pos"),
        count("neu"),
        count("neg"),
        voting_answer(&HalfVoting::new(5)),
    ]);
    table.push_row(vec![
        "Majority-Voting".into(),
        count("pos"),
        count("neu"),
        count("neg"),
        voting_answer(&MajorityVoting::new()),
    ]);

    let verifier = ProbabilisticVerifier::with_domain_size(3);
    let result = verifier.verify(&observation).unwrap();
    let confidence = |l: &str| fmt(result.confidence_of(&Label::from(l)));
    table.push_row(vec![
        "Verification".into(),
        confidence("pos"),
        confidence("neu"),
        confidence("neg"),
        result.best().as_str().to_string(),
    ]);
    table
}
