//! Figure 8 — real accuracy of the three verification models when the number of workers is
//! chosen by the prediction model for a user-required accuracy between 0.65 and 0.95.

use cdas_core::prediction::PredictionModel;
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;

use crate::{fmt, paper_pool, rng, sentiment_question, simulate_observation, Table};

const TRIALS: usize = 300;

/// Measure accuracy for each required-accuracy level.
pub fn run() -> Table {
    let pool = paper_pool(8);
    let mu = pool.true_mean_accuracy(&sentiment_question(0, 0.0));
    let prediction = PredictionModel::new(mu).unwrap();
    let mut r = rng(88);
    let mut table = Table::new(
        format!("Figure 8 — real accuracy vs user-required accuracy (mu = {mu:.3})"),
        &[
            "required",
            "workers",
            "Majority-Voting",
            "Half-Voting",
            "Verification",
        ],
    );
    let mut c = 0.65;
    while c <= 0.951 {
        let n = prediction.refined_workers(c).unwrap() as usize;
        let mut correct = [0usize; 3];
        for i in 0..TRIALS {
            let question = sentiment_question(i as u64, if i % 6 == 0 { 0.5 } else { 0.05 });
            let observation = simulate_observation(&pool, &question, n, &mut r);
            let verdicts = [
                MajorityVoting::new().decide(&observation).unwrap(),
                HalfVoting::new(n).decide(&observation).unwrap(),
                ProbabilisticVerifier::with_domain_size(3)
                    .decide(&observation)
                    .unwrap(),
            ];
            for (k, v) in verdicts.iter().enumerate() {
                if v.label() == Some(&question.ground_truth) {
                    correct[k] += 1;
                }
            }
        }
        table.push_row(vec![
            format!("{c:.2}"),
            n.to_string(),
            fmt(correct[0] as f64 / TRIALS as f64),
            fmt(correct[1] as f64 / TRIALS as f64),
            fmt(correct[2] as f64 / TRIALS as f64),
        ]);
        c += 0.05;
    }
    table
}
