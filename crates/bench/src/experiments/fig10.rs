//! Figure 10 — percentage of reviews with no answer as the number of reviews grows (fixed
//! worker count): the ratio is stable, i.e. indecisive reviews are spread uniformly.

use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;

use crate::{paper_pool, rng, sentiment_question, simulate_observation, Table};

const WORKERS: usize = 5;

/// Measure the no-answer ratio for growing review counts.
pub fn run() -> Table {
    let pool = paper_pool(10);
    let mut r = rng(1010);
    let mut table = Table::new(
        format!("Figure 10 — no-answer ratio vs number of reviews ({WORKERS} workers)"),
        &["reviews", "Majority-Voting", "Half-Voting"],
    );
    for reviews in (20..=300usize).step_by(40) {
        let mut undecided = [0usize; 2];
        for i in 0..reviews {
            let question = sentiment_question(i as u64, if i % 5 == 0 { 0.6 } else { 0.1 });
            let observation = simulate_observation(&pool, &question, WORKERS, &mut r);
            if !MajorityVoting::new()
                .decide(&observation)
                .unwrap()
                .is_accepted()
            {
                undecided[0] += 1;
            }
            if !HalfVoting::new(WORKERS)
                .decide(&observation)
                .unwrap()
                .is_accepted()
            {
                undecided[1] += 1;
            }
        }
        table.push_row(vec![
            reviews.to_string(),
            format!("{:.1}%", undecided[0] as f64 / reviews as f64 * 100.0),
            format!("{:.1}%", undecided[1] as f64 / reviews as f64 * 100.0),
        ]);
    }
    table
}
