//! Figure 7 — real accuracy of the three verification models as the number of workers per
//! question grows from 1 to 29.

use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;

use crate::{fmt, paper_pool, rng, sentiment_question, simulate_observation, Table};

const TRIALS: usize = 300;

/// Measure accuracy (no-answer counts as wrong) for every strategy and worker count.
pub fn run() -> Table {
    let pool = paper_pool(7);
    let mut r = rng(77);
    let mut table = Table::new(
        format!("Figure 7 — real accuracy vs number of workers ({TRIALS} questions per point)"),
        &["workers", "Majority-Voting", "Half-Voting", "Verification"],
    );
    for n in (1..=29usize).step_by(2) {
        let mut correct = [0usize; 3];
        for i in 0..TRIALS {
            let question = sentiment_question(i as u64, if i % 6 == 0 { 0.5 } else { 0.05 });
            let observation = simulate_observation(&pool, &question, n, &mut r);
            let verdicts = [
                MajorityVoting::new().decide(&observation).unwrap(),
                HalfVoting::new(n).decide(&observation).unwrap(),
                ProbabilisticVerifier::with_domain_size(3)
                    .decide(&observation)
                    .unwrap(),
            ];
            for (k, v) in verdicts.iter().enumerate() {
                if v.label() == Some(&question.ground_truth) {
                    correct[k] += 1;
                }
            }
        }
        table.push_row(vec![
            n.to_string(),
            fmt(correct[0] as f64 / TRIALS as f64),
            fmt(correct[1] as f64 / TRIALS as f64),
            fmt(correct[2] as f64 / TRIALS as f64),
        ]);
    }
    table
}
