//! Figure 18 — image tagging: real accuracy achieved versus the user-required accuracy,
//! with the worker count chosen by the prediction model.

use cdas_core::prediction::PredictionModel;
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::Verifier;
use cdas_crowd::question::CrowdQuestion;
use cdas_workloads::it::images::{ImageGenerator, ImageGeneratorConfig};
use cdas_workloads::it::FIGURE17_SUBJECTS;

use crate::{fmt, paper_pool, rng, simulate_observation, Table};

/// Run the required-vs-real accuracy sweep for the IT application.
pub fn run() -> Table {
    let pool = paper_pool(18);
    let mut r = rng(1818);
    // Mean accuracy on a representative tagging question (8 candidate tags).
    let mut gen = ImageGenerator::new(ImageGeneratorConfig {
        seed: 1888,
        ..ImageGeneratorConfig::default()
    });
    let sample_img = gen.generate_one("sun");
    let reference =
        CrowdQuestion::new(sample_img.id, sample_img.domain(), sample_img.truth_label());
    let mu = pool.true_mean_accuracy(&reference);
    let prediction = PredictionModel::new(mu).unwrap();

    // Evaluation images: the 100-image set of the paper (20 per subject).
    let mut images = Vec::new();
    for subject in FIGURE17_SUBJECTS {
        images.extend(gen.generate(subject, 20));
    }

    let mut table = Table::new(
        format!("Figure 18 — IT real accuracy vs user-required accuracy (mu = {mu:.3})"),
        &["required", "workers", "real accuracy"],
    );
    let mut c = 0.80;
    while c <= 0.961 {
        let n = prediction.refined_workers(c).unwrap() as usize;
        let mut correct = 0usize;
        for img in &images {
            let question = CrowdQuestion::new(img.id, img.domain(), img.truth_label())
                .with_difficulty(img.difficulty);
            let observation = simulate_observation(&pool, &question, n, &mut r);
            let verdict = ProbabilisticVerifier::with_domain_size(img.candidates.len())
                .decide(&observation)
                .unwrap();
            if verdict.label() == Some(&question.ground_truth) {
                correct += 1;
            }
        }
        table.push_row(vec![
            format!("{c:.2}"),
            n.to_string(),
            fmt(correct as f64 / images.len() as f64),
        ]);
        c += 0.02;
    }
    table
}
