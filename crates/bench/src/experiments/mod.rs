//! One module per table/figure of the CDAS evaluation (see the repository
//! ARCHITECTURE.md for the paper-section index).

pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod table04;

use crate::Table;

/// The signature shared by every experiment runner.
pub type ExperimentFn = fn() -> Table;

/// Every experiment, keyed by the id accepted by the `reproduce` binary.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table4", table04::run as ExperimentFn),
        ("fig5", fig05::run),
        ("fig6", fig06::run),
        ("fig7", fig07::run),
        ("fig8", fig08::run),
        ("fig9", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
    ]
}
