//! Figure 17 — crowdsourcing versus the automatic image tagger (the ALIPR stand-in): per
//! subject, the tagger's accuracy against IT with 1, 3 and 5 workers on 20 images each.

use cdas_baselines::image::AutoTagger;
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::Verifier;
use cdas_crowd::question::CrowdQuestion;
use cdas_workloads::it::images::{ImageGenerator, ImageGeneratorConfig};
use cdas_workloads::it::FIGURE17_SUBJECTS;

use crate::{fmt, paper_pool, rng, simulate_observation, Table};

const IMAGES_PER_SUBJECT: usize = 20;

/// Run the per-subject comparison.
pub fn run() -> Table {
    // Train the automatic tagger on a disjoint image collection.
    let mut train_gen = ImageGenerator::new(ImageGeneratorConfig {
        seed: 1700,
        ..ImageGeneratorConfig::default()
    });
    let mut tagger = AutoTagger::new();
    for subject in FIGURE17_SUBJECTS {
        let images = train_gen.generate(subject, 20);
        tagger.train(&images);
    }

    let pool = paper_pool(17);
    let mut r = rng(1717);
    let mut table = Table::new(
        format!("Figure 17 — crowdsourcing vs automatic tagger ({IMAGES_PER_SUBJECT} images per subject)"),
        &["subject", "auto tagger", "IT 1 worker", "IT 3 workers", "IT 5 workers"],
    );
    for (i, subject) in FIGURE17_SUBJECTS.iter().enumerate() {
        let mut test_gen = ImageGenerator::new(ImageGeneratorConfig {
            seed: 1800 + i as u64,
            ..ImageGeneratorConfig::default()
        });
        let images = test_gen.generate(subject, IMAGES_PER_SUBJECT);
        let machine = tagger.accuracy(&images);
        let mut row = vec![subject.to_string(), fmt(machine)];
        for workers in [1usize, 3, 5] {
            let mut correct = 0usize;
            for img in &images {
                let question = CrowdQuestion::new(img.id, img.domain(), img.truth_label())
                    .with_difficulty(img.difficulty);
                let observation = simulate_observation(&pool, &question, workers, &mut r);
                let verdict = ProbabilisticVerifier::with_domain_size(img.candidates.len())
                    .decide(&observation)
                    .unwrap();
                if verdict.label() == Some(&question.ground_truth) {
                    correct += 1;
                }
            }
            row.push(fmt(correct as f64 / images.len() as f64));
        }
        table.push_row(row);
    }
    table
}
