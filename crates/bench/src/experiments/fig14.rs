//! Figure 14 — worker accuracy versus AMT approval rate: the percentage of workers falling
//! into each 5-point band, for the real (task) accuracy and the publicly visible approval
//! rate. The two distributions are very different, which is why CDAS estimates accuracy by
//! sampling instead of trusting approval rates.

use crate::{paper_pool, Table};

/// Histogram both distributions over the paper's 25–100 % bands.
pub fn run() -> Table {
    let pool = paper_pool(14);
    let pairs = pool.accuracy_vs_approval();
    let n = pairs.len() as f64;
    let mut table = Table::new(
        "Figure 14 — worker accuracy vs approval rate (fraction of workers per band)",
        &["band", "real accuracy", "approval rate"],
    );
    let mut lo = 0.25;
    while lo < 1.0 - 1e-9 {
        let hi = lo + 0.05;
        let acc = pairs
            .iter()
            .filter(|(a, _)| *a >= lo && (*a < hi || (hi >= 1.0 && *a <= 1.0)))
            .count() as f64
            / n;
        let app = pairs
            .iter()
            .filter(|(_, p)| *p >= lo && (*p < hi || (hi >= 1.0 && *p <= 1.0)))
            .count() as f64
            / n;
        table.push_row(vec![
            format!("{:.0}-{:.0}%", lo * 100.0, hi * 100.0),
            format!("{:.1}%", acc * 100.0),
            format!("{:.1}%", app * 100.0),
        ]);
        lo = hi;
    }
    table
}
