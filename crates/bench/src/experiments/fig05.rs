//! Figure 5 — crowdsourcing versus the text-classification baseline: per-movie accuracy of
//! the Naive-Bayes classifier (the LIBSVM stand-in, trained on the other movies) against
//! TSA with 1, 3 and 5 workers.

use cdas_baselines::text::NaiveBayesClassifier;
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::Verifier;
use cdas_crowd::question::CrowdQuestion;
use cdas_workloads::difficulty::DifficultyModel;
use cdas_workloads::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};
use cdas_workloads::tsa::{sentiment_domain, MovieCatalog};

use crate::{fmt, paper_pool, rng, simulate_observation, Table};

const TWEETS_PER_MOVIE: usize = 200;

fn generator(seed: u64) -> TweetGenerator {
    TweetGenerator::new(TweetGeneratorConfig {
        // Real movie chatter carries a sizeable sarcastic fraction — the regime where the
        // crowd's advantage over bag-of-words models shows (the paper's "sucks" example).
        difficulty: DifficultyModel {
            hard_fraction: 0.3,
            easy_difficulty: 0.05,
            hard_difficulty: 0.5,
        },
        seed,
        ..TweetGeneratorConfig::default()
    })
}

/// Run the per-movie comparison.
pub fn run() -> Table {
    // Train the baseline on tweets about the *other* movies (the paper trains on 195).
    let catalog = MovieCatalog::with_size(45);
    let mut train_gen = generator(500);
    let mut nb = NaiveBayesClassifier::new();
    for title in catalog.titles().iter().skip(5) {
        let tweets = train_gen.generate(title, 25);
        nb.train(&tweets);
    }

    let pool = paper_pool(5);
    let mut r = rng(55);
    let mut table = Table::new(
        "Figure 5 — crowdsourcing vs text classifier (accuracy per movie, 200 tweets each)",
        &[
            "movie",
            "classifier",
            "TSA 1 worker",
            "TSA 3 workers",
            "TSA 5 workers",
        ],
    );
    for (i, movie) in MovieCatalog::paper_default()
        .figure5_movies()
        .iter()
        .enumerate()
    {
        let mut test_gen = generator(600 + i as u64);
        let tweets = test_gen.generate(movie, TWEETS_PER_MOVIE);
        let machine = nb.accuracy(&tweets);
        let mut row = vec![movie.to_string(), fmt(machine)];
        for workers in [1usize, 3, 5] {
            let mut correct = 0usize;
            for t in &tweets {
                let question = CrowdQuestion::new(t.id, sentiment_domain(), t.truth_label())
                    .with_difficulty(t.difficulty);
                let observation = simulate_observation(&pool, &question, workers, &mut r);
                let verdict = ProbabilisticVerifier::with_domain_size(3)
                    .decide(&observation)
                    .unwrap();
                if verdict.label() == Some(&question.ground_truth) {
                    correct += 1;
                }
            }
            row.push(fmt(correct as f64 / tweets.len() as f64));
        }
        table.push_row(row);
    }
    table
}
