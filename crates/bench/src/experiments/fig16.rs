//! Figure 16 — effect of the sampling rate on the verification accuracy: the engine
//! estimates worker accuracies from the gold questions of each HIT and verifies the real
//! questions with them; lower sampling rates give noisier estimates and lower accuracy.

use cdas_core::economics::CostModel;
use cdas_core::online::TerminationStrategy;
use cdas_core::prediction::PredictionModel;
use cdas_core::sampling::SamplingPlan;
use cdas_crowd::platform::SimulatedPlatform;
use cdas_crowd::pool::PoolConfig;
use cdas_crowd::pool::WorkerPool;
use cdas_engine::engine::{
    AccuracySource, CrowdsourcingEngine, EngineConfig, VerificationStrategy, WorkerCountPolicy,
};
use cdas_engine::metrics::score_hit;

use crate::{fmt, sentiment_question, Table};

const BATCH: usize = 60;

/// Run the engine at several sampling rates and required accuracies.
pub fn run() -> Table {
    let pool = WorkerPool::generate(&PoolConfig {
        size: 400,
        seed: 16,
        ..PoolConfig::default()
    });
    let mu = pool.true_mean_accuracy(&sentiment_question(0, 0.0));
    let prediction = PredictionModel::new(mu).unwrap();
    let _ = TerminationStrategy::ALL; // (documented alternative: run with early termination)

    let mut table = Table::new(
        format!("Figure 16 — verification accuracy vs required accuracy per sampling rate (mu = {mu:.3})"),
        &["required", "rate 5%", "rate 10%", "rate 20%", "rate 100%"],
    );
    let mut c = 0.65;
    while c <= 0.951 {
        let n = prediction.refined_workers(c).unwrap() as usize;
        let mut row = vec![format!("{c:.2}")];
        for rate in [0.05, 0.10, 0.20, 1.0] {
            let plan = SamplingPlan::new(BATCH, rate).unwrap();
            let questions: Vec<_> = (0..BATCH)
                .map(|i| {
                    let q = sentiment_question(i as u64, if i % 8 == 0 { 0.4 } else { 0.05 });
                    if plan.is_gold(i) {
                        q.as_gold()
                    } else {
                        q
                    }
                })
                .collect();
            let engine = CrowdsourcingEngine::new(EngineConfig {
                verification: VerificationStrategy::Probabilistic,
                workers: WorkerCountPolicy::Fixed(n),
                required_accuracy: c,
                accuracy_source: AccuracySource::GoldSampling,
                default_worker_accuracy: mu,
                domain_size: Some(3),
                ..EngineConfig::default()
            });
            let mut platform = SimulatedPlatform::new(
                pool.clone(),
                CostModel::default(),
                (c * 100.0) as u64 + (rate * 1000.0) as u64,
            );
            let outcome = engine.run_hit(&mut platform, questions.clone()).unwrap();
            // At 100 % sampling every question is gold; score those instead of the (empty)
            // set of real questions.
            let report = if rate >= 1.0 {
                let correct = outcome
                    .verdicts
                    .iter()
                    .filter(|v| v.verdict.label() == Some(&questions[0].ground_truth))
                    .count();
                correct as f64 / outcome.verdicts.len() as f64
            } else {
                score_hit(&questions, &outcome).accuracy
            };
            row.push(fmt(report));
        }
        table.push_row(row);
        c += 0.1;
    }
    table
}
