//! Regenerate the tables and figures of the CDAS evaluation.
//!
//! Usage:
//! ```text
//! cargo run -p cdas-bench --release --bin reproduce -- all
//! cargo run -p cdas-bench --release --bin reproduce -- fig7 fig8
//! cargo run -p cdas-bench --release --bin reproduce -- --csv fig6
//! cargo run -p cdas-bench --release --bin reproduce -- --list
//! ```

use cdas_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let list = args.iter().any(|a| a == "--list");
    let targets: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    let available = experiments::all();
    if list {
        println!("available experiments:");
        for (name, _) in &available {
            println!("  {name}");
        }
        return;
    }
    if targets.is_empty() {
        eprintln!("usage: reproduce [--csv] [--list] <all | table4 | fig5 .. fig18>...");
        std::process::exit(2);
    }

    let run_all = targets.iter().any(|t| t == "all");
    let mut ran = 0usize;
    for (name, runner) in available {
        if run_all || targets.iter().any(|t| t == name) {
            let table = runner();
            if csv {
                println!("# {}", table.title);
                print!("{}", table.to_csv());
            } else {
                println!("{}", table.render());
            }
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {targets:?}; use --list to see the available ids");
        std::process::exit(2);
    }
}
