//! Record (or validate) the committed scheduler performance snapshot.
//!
//! Usage:
//! ```text
//! cargo run -p cdas-bench --release --bin perf_snapshot                  # write BENCH_clocked.json
//! cargo run -p cdas-bench --release --bin perf_snapshot -- --out /tmp/b.json
//! cargo run -p cdas-bench --release --bin perf_snapshot -- --quick      # CI smoke (small workload)
//! cargo run -p cdas-bench --bin perf_snapshot -- --check BENCH_clocked.json
//! ```
//!
//! The default run measures the clocked fleet under both arrival-discovery modes at one
//! shard (scan is the pre-heap oracle, heap the production path), the heap mode again
//! with the write-ahead event journal appending under both fsync policies (per-commit
//! sync vs. group commit — their deltas against heap-1shard are the durability
//! overhead and what batching fsyncs claws back), the heap mode at 2/4/8 shards, and a
//! sustained-arrival `FleetService` lifetime (jobs submitted in waves, one epoch per
//! wave, group-commit run journals), then writes one `BENCH_clocked.json` snapshot.
//! Every PR re-records the file, so the trajectory of `events_per_sec` is reviewable in
//! git history. Simulated results (ticks, questions, latencies, makespan) are
//! deterministic per workload; only the wall-clock figures move between hosts.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use cdas_bench::snapshot::{percentile, BenchRecord, BenchSnapshot, BenchWorkload, SCHEMA_VERSION};
use cdas_core::online::TerminationStrategy;
use cdas_crowd::arrival::LatencyModel;
use cdas_crowd::spec::CrowdSpec;
use cdas_engine::fixtures::demo_questions;
use cdas_engine::fleet::{ExecutionMode, Fleet, FleetEvent, FleetRun, JobSpec};
use cdas_engine::journal::{JournalConfig, SyncPolicy};
use cdas_engine::scheduler::ArrivalDiscovery;
use cdas_engine::service::{FleetService, ServiceConfig, ServiceEvent, ServiceReport};

/// The standard workload: enough concurrent HITs that the scan loop's per-tick
/// O(in-flight) polling dominates, which is exactly what the event heap removes.
fn standard_workload() -> BenchWorkload {
    BenchWorkload {
        jobs: 48,
        questions_per_job: 48,
        gold_per_job: 12,
        pool: 288,
        workers_per_hit: 5,
        batch_size: 4,
        accuracy: 0.85,
        latency_mean_minutes: 5.0,
        seed: 42,
    }
}

/// The CI smoke workload: same shape, a fraction of the size.
fn quick_workload() -> BenchWorkload {
    BenchWorkload {
        jobs: 8,
        questions_per_job: 6,
        gold_per_job: 2,
        pool: 48,
        workers_per_hit: 4,
        batch_size: 4,
        accuracy: 0.85,
        latency_mean_minutes: 5.0,
        seed: 42,
    }
}

fn bench_crowd(w: &BenchWorkload) -> CrowdSpec {
    CrowdSpec::clean(w.pool as usize, w.accuracy)
        .seed(w.seed)
        .latency(LatencyModel::Exponential {
            mean: w.latency_mean_minutes,
        })
}

fn bench_job(w: &BenchWorkload, i: u64) -> JobSpec {
    JobSpec::sentiment(
        format!("job-{i}"),
        demo_questions(w.questions_per_job, w.gold_per_job),
    )
    .workers(w.workers_per_hit as usize)
    .batch_size(w.batch_size as usize)
    .domain_size(3)
    .termination(TerminationStrategy::ExpMax)
}

fn build_fleet(
    w: &BenchWorkload,
    discovery: ArrivalDiscovery,
    journal: Option<(&Path, JournalConfig)>,
) -> Fleet {
    let mut builder = Fleet::builder()
        .crowd(bench_crowd(w))
        .scheduler_seed(w.seed)
        .arrival_discovery(discovery);
    if let Some((dir, config)) = journal {
        builder = builder.journal(dir).journal_config(config);
    }
    for i in 0..w.jobs {
        builder = builder.job(bench_job(w, i));
    }
    builder.build().expect("benchmark workload is feasible")
}

/// Turns per-key dispatch times plus completion times into per-HIT latency spans:
/// a job's batches run back to back, so one HIT's span runs from its dispatch to the
/// job's next dispatch (or the job's completion, for its last HIT).
fn latency_spans<K: Ord>(
    dispatches: BTreeMap<K, Vec<f64>>,
    completed: &BTreeMap<K, f64>,
) -> Vec<f64> {
    let mut latencies = Vec::new();
    for (key, mut ats) in dispatches {
        ats.sort_by(f64::total_cmp);
        let end = completed.get(&key).copied().unwrap_or(f64::NAN);
        for (i, &at) in ats.iter().enumerate() {
            let until = ats.get(i + 1).copied().unwrap_or(end);
            if until.is_finite() {
                latencies.push(until - at);
            }
        }
    }
    latencies
}

/// Per-HIT verdict latencies of a single fleet run, in simulated minutes.
fn verdict_latencies(run: &FleetRun) -> Vec<f64> {
    let mut dispatches: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut completed: BTreeMap<u64, f64> = BTreeMap::new();
    for event in run.events() {
        match event {
            FleetEvent::HitDispatched { job, at, .. } => {
                dispatches.entry(job.0 as u64).or_default().push(*at);
            }
            FleetEvent::JobCompleted { job, at, .. } => {
                completed.insert(job.0 as u64, *at);
            }
            _ => {}
        }
    }
    latency_spans(dispatches, &completed)
}

/// Per-HIT verdict latencies across a whole service lifetime. Epoch-local `at`
/// timestamps restart per epoch, so spans are keyed by (epoch, ticket) — a ticket's
/// HITs never straddle epochs.
fn service_verdict_latencies(report: &ServiceReport) -> Vec<f64> {
    let mut dispatches: BTreeMap<(u64, u64), Vec<f64>> = BTreeMap::new();
    let mut completed: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for event in &report.events {
        if let ServiceEvent::Job {
            ticket,
            epoch,
            event,
        } = event
        {
            match event {
                FleetEvent::HitDispatched { at, .. } => {
                    dispatches.entry((*epoch, ticket.0)).or_default().push(*at);
                }
                FleetEvent::JobCompleted { at, .. } => {
                    completed.insert((*epoch, ticket.0), *at);
                }
                _ => {}
            }
        }
    }
    latency_spans(dispatches, &completed)
}

/// One untimed journaled run before every timed repeat, so each row measures the same
/// steady-state machine. Without it the rows measured first (the no-journal baselines)
/// run on a quiet page cache while later journaled rows inherit the writeback their
/// predecessors queued — which inflates the journal-overhead ratios the snapshot exists
/// to pin down.
fn warm_up(w: &BenchWorkload) {
    let dir = std::env::temp_dir().join(format!("cdas-perf-warmup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let group_commit = JournalConfig {
        sync: SyncPolicy::GroupCommit {
            max_batch: 32,
            max_delay_ms: 50,
        },
        ..JournalConfig::default()
    };
    let fleet = build_fleet(
        w,
        ArrivalDiscovery::Heap,
        Some((dir.as_path(), group_commit)),
    );
    let _ = fleet.run(ExecutionMode::Clocked);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measure one configuration: best-of-`repeats` wall clock around `Fleet::run`; the
/// simulated outcome is deterministic, so ticks/questions/latencies come from any run.
fn measure(
    w: &BenchWorkload,
    label: &str,
    discovery: ArrivalDiscovery,
    mode: ExecutionMode,
    journal: Option<(&Path, JournalConfig)>,
    repeats: usize,
) -> BenchRecord {
    let journaled = journal.is_some();
    let fleet = build_fleet(w, discovery, journal);
    let mut best = f64::INFINITY;
    let mut measured: Option<FleetRun> = None;
    for _ in 0..repeats.max(1) {
        warm_up(w);
        let start = Instant::now();
        let run = fleet.run(mode).expect("benchmark run succeeds");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        if wall < best {
            best = wall;
        }
        measured = Some(run);
    }
    let run = measured.expect("at least one repeat ran");
    let report = run.report();
    let latencies = verdict_latencies(&run);
    let (shards, mode_name) = match mode {
        ExecutionMode::Parallel { shards } => (shards as u64, "parallel"),
        _ => (1, "clocked"),
    };
    BenchRecord {
        label: label.to_string(),
        discovery: match discovery {
            ArrivalDiscovery::Heap => "heap",
            ArrivalDiscovery::Scan => "scan",
        }
        .to_string(),
        mode: mode_name.to_string(),
        journal: if journaled { "on" } else { "off" }.to_string(),
        shards,
        wall_seconds: best,
        ticks: report.ticks as u64,
        questions: report.fleet.questions as u64,
        events_per_sec: report.ticks as f64 / best,
        questions_per_sec: report.fleet.questions as f64 / best,
        p50_verdict_latency_min: percentile(&latencies, 0.5),
        p99_verdict_latency_min: percentile(&latencies, 0.99),
        makespan_min: report.makespan,
    }
}

/// How many arrival waves the sustained-service row spreads the workload across:
/// each wave submits its jobs mid-lifetime and is served by one epoch.
const SERVICE_WAVES: usize = 4;

/// Measure a sustained-arrival `FleetService` lifetime: open, submit the workload's
/// jobs in [`SERVICE_WAVES`] waves with one epoch after each (so later submissions
/// genuinely arrive while earlier work is already served), then shut down. The wall
/// clock covers the entire lifetime — manifest appends, admission, group-commit run
/// journals, shutdown trailer. Ticks/questions/makespan sum across epochs.
fn measure_service(w: &BenchWorkload, label: &str, repeats: usize) -> BenchRecord {
    let dir = std::env::temp_dir().join(format!("cdas-perf-service-{}", std::process::id()));
    let per_wave = (w.jobs as usize).div_ceil(SERVICE_WAVES).max(1);
    let mut best = f64::INFINITY;
    let mut measured: Option<ServiceReport> = None;
    for _ in 0..repeats.max(1) {
        warm_up(w);
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServiceConfig::new(bench_crowd(w));
        config.scheduler.seed = w.seed;
        config.scheduler.discovery = ArrivalDiscovery::Heap;
        // One shard keeps every epoch clocked, so the row compares directly against
        // the 1-shard fleet rows.
        config.max_shards = 1;
        let start = Instant::now();
        let mut service = FleetService::open(&dir, config).expect("service opens");
        let mut submitted = 0usize;
        while submitted < w.jobs as usize {
            let wave_end = (submitted + per_wave).min(w.jobs as usize);
            for i in submitted..wave_end {
                // The row measures throughput; per-ticket streams are exercised by
                // the service tests, so the minted ticket is deliberately unused.
                let _ticket = service
                    .submit(bench_job(w, i as u64))
                    .expect("benchmark submissions are admissible");
            }
            submitted = wave_end;
            service.run_epoch().expect("benchmark epoch succeeds");
        }
        let report = service.shutdown().expect("service shuts down cleanly");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        if wall < best {
            best = wall;
        }
        measured = Some(report);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let report = measured.expect("at least one repeat ran");
    let ticks: usize = report.epochs.iter().map(|e| e.ticks).sum();
    let questions: usize = report.epochs.iter().map(|e| e.fleet.questions).sum();
    let makespan: f64 = report.epochs.iter().map(|e| e.makespan).sum();
    let latencies = service_verdict_latencies(&report);
    BenchRecord {
        label: label.to_string(),
        discovery: "heap".to_string(),
        mode: "clocked".to_string(),
        // A service always journals: the manifest plus one run journal per epoch.
        journal: "on".to_string(),
        shards: 1,
        wall_seconds: best,
        ticks: ticks as u64,
        questions: questions as u64,
        events_per_sec: ticks as f64 / best,
        questions_per_sec: questions as f64 / best,
        p50_verdict_latency_min: percentile(&latencies, 0.5),
        p99_verdict_latency_min: percentile(&latencies, 0.99),
        makespan_min: makespan,
    }
}

fn print_record(record: &BenchRecord) {
    eprintln!(
        "  {:<31} {:>9.1} events/s  {:>8.1} questions/s  (wall {:.4}s, {} ticks)",
        record.label,
        record.events_per_sec,
        record.questions_per_sec,
        record.wall_seconds,
        record.ticks,
    );
}

fn record_snapshot(w: &BenchWorkload, repeats: usize) -> BenchSnapshot {
    // A throwaway journal directory for the journaled rows; `Journal::create` wipes
    // leftover segments, so repeats overwrite rather than accumulate.
    let journal_dir =
        std::env::temp_dir().join(format!("cdas-perf-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    // max_batch 64 ≈ one fsync per 64 committed batches — wide enough that the fsync
    // tail (spiky on shared storage) stops dominating the row, while max_delay_ms still
    // bounds how long a committed batch can sit unsynced. The service default stays a
    // tighter 8; this row records what the policy buys when a deployment opts into a
    // wider group.
    let group_commit = JournalConfig {
        sync: SyncPolicy::GroupCommit {
            max_batch: 64,
            max_delay_ms: 50,
        },
        ..JournalConfig::default()
    };
    let mut configs: Vec<(
        String,
        ArrivalDiscovery,
        ExecutionMode,
        Option<JournalConfig>,
    )> = vec![
        (
            "scan-1shard".to_string(),
            ArrivalDiscovery::Scan,
            ExecutionMode::Clocked,
            None,
        ),
        (
            "heap-1shard".to_string(),
            ArrivalDiscovery::Heap,
            ExecutionMode::Clocked,
            None,
        ),
        // The same configuration with the write-ahead journal appending every event:
        // its delta against heap-1shard is the durability overhead. Once with the
        // default per-commit fsync, once with group commit — the gap between the two
        // is what batching fsyncs buys a resident service.
        (
            "heap-1shard-journal".to_string(),
            ArrivalDiscovery::Heap,
            ExecutionMode::Clocked,
            Some(JournalConfig::default()),
        ),
        (
            "heap-1shard-journal-groupcommit".to_string(),
            ArrivalDiscovery::Heap,
            ExecutionMode::Clocked,
            Some(group_commit),
        ),
    ];
    for shards in [2usize, 4, 8] {
        configs.push((
            format!("heap-{shards}shard"),
            ArrivalDiscovery::Heap,
            ExecutionMode::Parallel { shards },
            None,
        ));
    }

    let mut records: Vec<BenchRecord> = configs
        .into_iter()
        .map(|(label, discovery, mode, journal)| {
            let journal = journal.map(|config| (journal_dir.as_path(), config));
            let record = measure(w, &label, discovery, mode, journal, repeats);
            print_record(&record);
            record
        })
        .collect();
    let _ = std::fs::remove_dir_all(&journal_dir);

    let service = measure_service(w, "service-sustained", repeats);
    print_record(&service);
    records.push(service);

    BenchSnapshot {
        schema: SCHEMA_VERSION,
        workload: w.clone(),
        records,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_clocked.json".to_string();
    let mut check: Option<String> = None;
    let mut repeats = 5usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => usage("--out needs a path"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => usage("--check needs a path"),
            },
            "--repeats" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) => repeats = n,
                None => usage("--repeats needs a number"),
            },
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match BenchSnapshot::from_json(&text) {
            Ok(snapshot) => {
                println!(
                    "{path}: valid perf snapshot (schema {}, {} records, workload of {} jobs)",
                    snapshot.schema,
                    snapshot.records.len(),
                    snapshot.workload.jobs,
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let workload = if quick {
        quick_workload()
    } else {
        standard_workload()
    };
    eprintln!(
        "recording perf snapshot ({} jobs x {} questions, pool {}, {} repeats):",
        workload.jobs, workload.questions_per_job, workload.pool, repeats,
    );
    let snapshot = record_snapshot(&workload, repeats);
    if let (Some(scan), Some(heap)) = (
        snapshot.record("scan-1shard"),
        snapshot.record("heap-1shard"),
    ) {
        eprintln!(
            "  heap/scan events/sec at 1 shard: {:.2}x",
            heap.events_per_sec / scan.events_per_sec,
        );
    }
    if let (Some(plain), Some(journaled)) = (
        snapshot.record("heap-1shard"),
        snapshot.record("heap-1shard-journal"),
    ) {
        eprintln!(
            "  per-commit-fsync journal wall overhead at 1 shard: {:.2}x",
            journaled.wall_seconds / plain.wall_seconds,
        );
    }
    if let (Some(plain), Some(grouped)) = (
        snapshot.record("heap-1shard"),
        snapshot.record("heap-1shard-journal-groupcommit"),
    ) {
        eprintln!(
            "  group-commit journal wall overhead at 1 shard: {:.2}x",
            grouped.wall_seconds / plain.wall_seconds,
        );
    }
    if let Some(service) = snapshot.record("service-sustained") {
        eprintln!(
            "  sustained service: {:.1} jobs/s admitted+served, makespan {:.1} simulated min",
            snapshot.workload.jobs as f64 / service.wall_seconds,
            service.makespan_min,
        );
    }
    snapshot.validate().unwrap_or_else(|e| {
        eprintln!("recorded snapshot failed its own validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out, snapshot.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

fn usage(problem: &str) -> ! {
    eprintln!("perf_snapshot: {problem}");
    eprintln!("usage: perf_snapshot [--quick] [--out <path>] [--repeats <n>] [--check <path>]");
    std::process::exit(2);
}
