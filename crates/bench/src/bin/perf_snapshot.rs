//! Record (or validate) the committed scheduler performance snapshot.
//!
//! Usage:
//! ```text
//! cargo run -p cdas-bench --release --bin perf_snapshot                  # write BENCH_clocked.json
//! cargo run -p cdas-bench --release --bin perf_snapshot -- --out /tmp/b.json
//! cargo run -p cdas-bench --release --bin perf_snapshot -- --quick      # CI smoke (small workload)
//! cargo run -p cdas-bench --bin perf_snapshot -- --check BENCH_clocked.json
//! ```
//!
//! The default run measures the clocked fleet under both arrival-discovery modes at one
//! shard (scan is the pre-heap oracle, heap the production path), the heap mode again
//! with the write-ahead event journal appending (the durability-overhead row), and the
//! heap mode at 2/4/8 shards, then writes one `BENCH_clocked.json` snapshot. Every PR re-records the
//! file, so the trajectory of `events_per_sec` is reviewable in git history. Simulated
//! results (ticks, questions, latencies, makespan) are deterministic per workload; only
//! the wall-clock figures move between hosts.

use std::path::Path;
use std::time::Instant;

use cdas_bench::snapshot::{percentile, BenchRecord, BenchSnapshot, BenchWorkload, SCHEMA_VERSION};
use cdas_core::online::TerminationStrategy;
use cdas_crowd::arrival::LatencyModel;
use cdas_crowd::spec::CrowdSpec;
use cdas_engine::fixtures::demo_questions;
use cdas_engine::fleet::{ExecutionMode, Fleet, FleetEvent, FleetRun, JobSpec};
use cdas_engine::scheduler::ArrivalDiscovery;

/// The standard workload: enough concurrent HITs that the scan loop's per-tick
/// O(in-flight) polling dominates, which is exactly what the event heap removes.
fn standard_workload() -> BenchWorkload {
    BenchWorkload {
        jobs: 48,
        questions_per_job: 48,
        gold_per_job: 12,
        pool: 288,
        workers_per_hit: 5,
        batch_size: 4,
        accuracy: 0.85,
        latency_mean_minutes: 5.0,
        seed: 42,
    }
}

/// The CI smoke workload: same shape, a fraction of the size.
fn quick_workload() -> BenchWorkload {
    BenchWorkload {
        jobs: 8,
        questions_per_job: 6,
        gold_per_job: 2,
        pool: 48,
        workers_per_hit: 4,
        batch_size: 4,
        accuracy: 0.85,
        latency_mean_minutes: 5.0,
        seed: 42,
    }
}

fn build_fleet(w: &BenchWorkload, discovery: ArrivalDiscovery, journal: Option<&Path>) -> Fleet {
    let crowd = CrowdSpec::clean(w.pool as usize, w.accuracy)
        .seed(w.seed)
        .latency(LatencyModel::Exponential {
            mean: w.latency_mean_minutes,
        });
    let mut builder = Fleet::builder()
        .crowd(crowd)
        .scheduler_seed(w.seed)
        .arrival_discovery(discovery);
    if let Some(dir) = journal {
        builder = builder.journal(dir);
    }
    for i in 0..w.jobs {
        builder = builder.job(
            JobSpec::sentiment(
                format!("job-{i}"),
                demo_questions(w.questions_per_job, w.gold_per_job),
            )
            .workers(w.workers_per_hit as usize)
            .batch_size(w.batch_size as usize)
            .domain_size(3)
            .termination(TerminationStrategy::ExpMax),
        );
    }
    builder.build().expect("benchmark workload is feasible")
}

/// Per-HIT verdict latencies in simulated minutes. A job's batches run back to back,
/// so one HIT's span runs from its dispatch to the job's next dispatch (or the job's
/// completion, for its last HIT).
fn verdict_latencies(run: &FleetRun) -> Vec<f64> {
    use std::collections::BTreeMap;
    let mut dispatches: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut completed: BTreeMap<u64, f64> = BTreeMap::new();
    for event in run.events() {
        match event {
            FleetEvent::HitDispatched { job, at, .. } => {
                dispatches.entry(job.0 as u64).or_default().push(*at);
            }
            FleetEvent::JobCompleted { job, at, .. } => {
                completed.insert(job.0 as u64, *at);
            }
            _ => {}
        }
    }
    let mut latencies = Vec::new();
    for (job, mut ats) in dispatches {
        ats.sort_by(f64::total_cmp);
        let end = completed.get(&job).copied().unwrap_or(f64::NAN);
        for (i, &at) in ats.iter().enumerate() {
            let until = ats.get(i + 1).copied().unwrap_or(end);
            if until.is_finite() {
                latencies.push(until - at);
            }
        }
    }
    latencies
}

/// Measure one configuration: best-of-`repeats` wall clock around `Fleet::run`; the
/// simulated outcome is deterministic, so ticks/questions/latencies come from any run.
fn measure(
    w: &BenchWorkload,
    label: &str,
    discovery: ArrivalDiscovery,
    mode: ExecutionMode,
    journal: Option<&Path>,
    repeats: usize,
) -> BenchRecord {
    let fleet = build_fleet(w, discovery, journal);
    let mut best = f64::INFINITY;
    let mut measured: Option<FleetRun> = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let run = fleet.run(mode).expect("benchmark run succeeds");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        if wall < best {
            best = wall;
        }
        measured = Some(run);
    }
    let run = measured.expect("at least one repeat ran");
    let report = run.report();
    let latencies = verdict_latencies(&run);
    let (shards, mode_name) = match mode {
        ExecutionMode::Parallel { shards } => (shards as u64, "parallel"),
        _ => (1, "clocked"),
    };
    BenchRecord {
        label: label.to_string(),
        discovery: match discovery {
            ArrivalDiscovery::Heap => "heap",
            ArrivalDiscovery::Scan => "scan",
        }
        .to_string(),
        mode: mode_name.to_string(),
        journal: if journal.is_some() { "on" } else { "off" }.to_string(),
        shards,
        wall_seconds: best,
        ticks: report.ticks as u64,
        questions: report.fleet.questions as u64,
        events_per_sec: report.ticks as f64 / best,
        questions_per_sec: report.fleet.questions as f64 / best,
        p50_verdict_latency_min: percentile(&latencies, 0.5),
        p99_verdict_latency_min: percentile(&latencies, 0.99),
        makespan_min: report.makespan,
    }
}

fn record_snapshot(w: &BenchWorkload, repeats: usize) -> BenchSnapshot {
    // A throwaway journal directory for the journaled row; `Journal::create` wipes
    // leftover segments, so repeats overwrite rather than accumulate.
    let journal_dir =
        std::env::temp_dir().join(format!("cdas-perf-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    let configs: Vec<(String, ArrivalDiscovery, ExecutionMode, bool)> = std::iter::once((
        "scan-1shard".to_string(),
        ArrivalDiscovery::Scan,
        ExecutionMode::Clocked,
        false,
    ))
    .chain(std::iter::once((
        "heap-1shard".to_string(),
        ArrivalDiscovery::Heap,
        ExecutionMode::Clocked,
        false,
    )))
    // The same configuration with the write-ahead journal appending every event:
    // its delta against heap-1shard is the durability overhead.
    .chain(std::iter::once((
        "heap-1shard-journal".to_string(),
        ArrivalDiscovery::Heap,
        ExecutionMode::Clocked,
        true,
    )))
    .chain([2usize, 4, 8].into_iter().map(|shards| {
        (
            format!("heap-{shards}shard"),
            ArrivalDiscovery::Heap,
            ExecutionMode::Parallel { shards },
            false,
        )
    }))
    .collect();

    let records = configs
        .into_iter()
        .map(|(label, discovery, mode, journaled)| {
            let journal = journaled.then_some(journal_dir.as_path());
            let record = measure(w, &label, discovery, mode, journal, repeats);
            eprintln!(
                "  {:<19} {:>9.1} events/s  {:>8.1} questions/s  (wall {:.4}s, {} ticks)",
                record.label,
                record.events_per_sec,
                record.questions_per_sec,
                record.wall_seconds,
                record.ticks,
            );
            record
        })
        .collect();
    let _ = std::fs::remove_dir_all(&journal_dir);

    BenchSnapshot {
        schema: SCHEMA_VERSION,
        workload: w.clone(),
        records,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_clocked.json".to_string();
    let mut check: Option<String> = None;
    let mut repeats = 5usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => usage("--out needs a path"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => usage("--check needs a path"),
            },
            "--repeats" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) => repeats = n,
                None => usage("--repeats needs a number"),
            },
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match BenchSnapshot::from_json(&text) {
            Ok(snapshot) => {
                println!(
                    "{path}: valid perf snapshot (schema {}, {} records, workload of {} jobs)",
                    snapshot.schema,
                    snapshot.records.len(),
                    snapshot.workload.jobs,
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let workload = if quick {
        quick_workload()
    } else {
        standard_workload()
    };
    eprintln!(
        "recording perf snapshot ({} jobs x {} questions, pool {}, {} repeats):",
        workload.jobs, workload.questions_per_job, workload.pool, repeats,
    );
    let snapshot = record_snapshot(&workload, repeats);
    if let (Some(scan), Some(heap)) = (
        snapshot.record("scan-1shard"),
        snapshot.record("heap-1shard"),
    ) {
        eprintln!(
            "  heap/scan events/sec at 1 shard: {:.2}x",
            heap.events_per_sec / scan.events_per_sec,
        );
    }
    if let (Some(plain), Some(journaled)) = (
        snapshot.record("heap-1shard"),
        snapshot.record("heap-1shard-journal"),
    ) {
        eprintln!(
            "  journal-on/journal-off events/sec at 1 shard: {:.2}x",
            journaled.events_per_sec / plain.events_per_sec,
        );
    }
    snapshot.validate().unwrap_or_else(|e| {
        eprintln!("recorded snapshot failed its own validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out, snapshot.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

fn usage(problem: &str) -> ! {
    eprintln!("perf_snapshot: {problem}");
    eprintln!("usage: perf_snapshot [--quick] [--out <path>] [--repeats <n>] [--check <path>]");
    std::process::exit(2);
}
