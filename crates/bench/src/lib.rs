//! # cdas-bench — the experiment harness of the CDAS reproduction
//!
//! One runner per table/figure of the paper's evaluation (§5). Each experiment returns a
//! [`Table`] with the same rows/series the paper plots; the `reproduce` binary prints them
//! (and a CSV form) so paper-versus-measured shapes can be recorded side by side.
//!
//! The absolute numbers differ from the paper — there is no real crowd here — but every
//! qualitative claim is regenerated: verification dominates voting, binary search cuts the
//! conservative estimate, ExpMax saves more than half of the workers, approval rate is not
//! accuracy, a 20 % sampling rate suffices, and the crowd beats the machine baselines.

#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod snapshot;

use cdas_core::types::{Label, Observation, Vote};
use cdas_crowd::pool::{PoolConfig, WorkerPool};
use cdas_crowd::question::CrowdQuestion;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A printable experiment result: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier and description (e.g. "Figure 7 — accuracy vs #workers").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table from string-like headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:>width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated, no quoting — cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three decimals (the precision the figures are read at).
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// The default worker pool used by the TSA experiments: the paper's Figure 14 accuracy
/// shape, a small spammer minority, 500 workers.
pub fn paper_pool(seed: u64) -> WorkerPool {
    WorkerPool::generate(&PoolConfig {
        seed,
        ..PoolConfig::default()
    })
}

/// A three-label sentiment question with the given difficulty.
pub fn sentiment_question(id: u64, difficulty: f64) -> CrowdQuestion {
    CrowdQuestion::new(
        cdas_core::types::QuestionId(id),
        cdas_core::types::AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        Label::from("Positive"),
    )
    .with_difficulty(difficulty)
}

/// Simulate one question being answered by `n` random workers of the pool; the votes carry
/// the workers' *true* effective accuracies (the oracle setting used by the model-level
/// figures; the application-level figures go through the engine's sampling path instead).
pub fn simulate_observation(
    pool: &WorkerPool,
    question: &CrowdQuestion,
    n: usize,
    rng: &mut StdRng,
) -> Observation {
    let workers = pool.assign(n, rng);
    Observation::from_votes(
        workers
            .iter()
            .map(|w| {
                Vote::new(
                    w.id,
                    w.answer(question, rng),
                    w.effective_accuracy(question),
                )
            })
            .collect(),
    )
}

/// A seeded RNG for experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "0.500".into()]);
        t.push_row(vec!["20".into(), "0.750".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("0.750"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x,value"));
    }

    #[test]
    fn simulate_observation_produces_n_votes() {
        let pool = paper_pool(1);
        let q = sentiment_question(0, 0.0);
        let mut r = rng(2);
        let obs = simulate_observation(&pool, &q, 9, &mut r);
        assert_eq!(obs.len(), 9);
    }

    #[test]
    fn every_experiment_produces_rows() {
        // Smoke-test the cheap experiments end to end (the expensive ones are exercised by
        // the reproduce binary and the criterion benches).
        let quick = [
            experiments::table04::run(),
            experiments::fig06::run(),
            experiments::fig14::run(),
        ];
        for table in quick {
            assert!(!table.rows.is_empty(), "{} has no rows", table.title);
            assert!(!table.headers.is_empty());
        }
    }
}
