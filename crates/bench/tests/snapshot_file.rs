//! Guard the committed `BENCH_clocked.json` at the repository root: it must parse
//! against the in-tree codec, pass schema validation, and actually record the claim the
//! event-heap PR series makes — the heap-driven scheduler out-runs the scan oracle on
//! raw event throughput at one shard, with the 2/4/8-shard trajectory present.

use cdas_bench::snapshot::{BenchSnapshot, SCHEMA_VERSION};
use std::path::Path;

fn committed_snapshot() -> BenchSnapshot {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_clocked.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    BenchSnapshot::from_json(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid perf snapshot: {e}", path.display()))
}

#[test]
fn committed_snapshot_is_valid_and_current() {
    let snapshot = committed_snapshot();
    assert_eq!(snapshot.schema, SCHEMA_VERSION);
    assert!(snapshot.workload.jobs > 0);
}

#[test]
fn committed_snapshot_covers_the_shard_trajectory() {
    let snapshot = committed_snapshot();
    for label in [
        "scan-1shard",
        "heap-1shard",
        "heap-1shard-journal",
        "heap-1shard-journal-groupcommit",
        "heap-2shard",
        "heap-4shard",
        "heap-8shard",
        "service-sustained",
    ] {
        assert!(
            snapshot.record(label).is_some(),
            "snapshot is missing the {label} record"
        );
    }
    for (label, shards) in [("heap-2shard", 2), ("heap-4shard", 4), ("heap-8shard", 8)] {
        let record = snapshot.record(label).unwrap();
        assert_eq!(record.shards, shards);
        assert_eq!(record.mode, "parallel");
        assert_eq!(record.discovery, "heap");
    }
}

#[test]
fn committed_snapshot_shows_the_heap_beating_the_scan_oracle() {
    let snapshot = committed_snapshot();
    let scan = snapshot
        .record("scan-1shard")
        .expect("scan baseline present");
    let heap = snapshot.record("heap-1shard").expect("heap record present");
    // Identical simulated workload — the wall clock is the only thing that may differ.
    assert_eq!(
        heap.ticks, scan.ticks,
        "1-shard heap and scan are bit-identical"
    );
    assert_eq!(heap.questions, scan.questions);
    assert!(
        heap.events_per_sec > scan.events_per_sec,
        "recorded heap events/sec ({:.1}) does not beat scan ({:.1}) — re-record the \
         snapshot with `cargo run -p cdas-bench --release --bin perf_snapshot`",
        heap.events_per_sec,
        scan.events_per_sec,
    );
}

#[test]
fn committed_snapshot_records_the_journal_overhead_row() {
    let snapshot = committed_snapshot();
    let plain = snapshot.record("heap-1shard").expect("heap record present");
    let journaled = snapshot
        .record("heap-1shard-journal")
        .expect("journaled heap record present");
    assert_eq!(journaled.journal, "on");
    assert_eq!(plain.journal, "off");
    assert_eq!(journaled.mode, "clocked");
    assert_eq!(journaled.discovery, "heap");
    // Journaling is pure observation: the simulated run is bit-identical to the
    // unjournaled one — only wall clock (and so events/sec) may differ.
    assert_eq!(
        journaled.ticks, plain.ticks,
        "the journal must not change the simulated schedule"
    );
    assert_eq!(journaled.questions, plain.questions);
    assert_eq!(journaled.makespan_min, plain.makespan_min);
}

#[test]
fn committed_snapshot_shows_group_commit_closing_the_journal_gap() {
    let snapshot = committed_snapshot();
    let plain = snapshot.record("heap-1shard").expect("heap record present");
    let grouped = snapshot
        .record("heap-1shard-journal-groupcommit")
        .expect("group-commit journaled record present");
    assert_eq!(grouped.journal, "on");
    assert_eq!(grouped.mode, "clocked");
    assert_eq!(grouped.discovery, "heap");
    // Group commit changes only when fsyncs land, never what gets journaled: the
    // simulated run stays bit-identical to the unjournaled one.
    assert_eq!(
        grouped.ticks, plain.ticks,
        "group commit must not change the simulated schedule"
    );
    assert_eq!(grouped.questions, plain.questions);
    assert_eq!(grouped.makespan_min, plain.makespan_min);
    // The headline claim: batching fsyncs keeps the durability tax within 2x of the
    // no-journal wall clock (the per-commit-fsync row historically sat near 6x).
    assert!(
        grouped.wall_seconds <= 2.0 * plain.wall_seconds,
        "group-commit journaled wall ({:.4}s) exceeds 2x the no-journal wall ({:.4}s) — \
         re-record the snapshot with `cargo run -p cdas-bench --release --bin perf_snapshot`",
        grouped.wall_seconds,
        plain.wall_seconds,
    );
}

#[test]
fn committed_snapshot_records_the_sustained_service_row() {
    let snapshot = committed_snapshot();
    let service = snapshot
        .record("service-sustained")
        .expect("sustained-service record present");
    // A service lifetime always journals (manifest + per-epoch run journals), and the
    // row pins max_shards = 1 so it compares against the 1-shard fleet rows.
    assert_eq!(service.journal, "on");
    assert_eq!(service.mode, "clocked");
    assert_eq!(service.discovery, "heap");
    assert_eq!(service.shards, 1);
    // No starvation under sustained arrivals: every submitted job's questions were
    // served across the epochs — nothing was left queued at shutdown.
    let w = &snapshot.workload;
    assert_eq!(
        service.questions,
        w.jobs * w.questions_per_job,
        "the service left submissions unserved"
    );
    // And no makespan collapse: the summed simulated makespan stays positive and the
    // validator already ties p99 verdict latency under it.
    assert!(service.makespan_min > 0.0);
}
