//! # cdas — umbrella crate of the CDAS reproduction
//!
//! Re-exports every sub-crate under one roof so applications can depend on a single crate:
//!
//! * [`core`] — the quality-sensitive answering model (prediction, verification, online
//!   processing, sampling, presentation, economics),
//! * [`crowd`] — the simulated crowdsourcing platform (the AMT substitute),
//! * [`workloads`] — the synthetic TSA and IT workloads,
//! * [`baselines`] — the machine baselines (LIBSVM / ALIPR substitutes),
//! * [`engine`] — the CDAS query engine and the two end-to-end applications.
//!
//! The front door for applications is the [`prelude`] and the fleet facade it exports
//! (`Fleet::builder()` — see `cdas::engine::fleet`); the [`fixtures`] module holds the
//! deterministic demo questions the examples and benches feed it.
//!
//! The workspace-level `examples/` and `tests/` directories are registered against this
//! crate; see the repository README for a guided tour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub use cdas_baselines as baselines;
pub use cdas_core as core;
pub use cdas_crowd as crowd;
pub use cdas_engine as engine;
pub use cdas_engine::fixtures;
pub use cdas_workloads as workloads;

/// A convenient prelude pulling in the types most programs need.
///
/// The **front door** lives here: [`Fleet`](prelude::Fleet) /
/// [`JobSpec`](prelude::JobSpec) / [`CrowdSpec`](prelude::CrowdSpec) /
/// [`ExecutionMode`](prelude::ExecutionMode) cover most programs end to end. The
/// hand-wiring types ([`JobScheduler`](prelude::JobScheduler),
/// [`PoolLedger`](prelude::PoolLedger), …) remain exported as the advanced layer.
pub mod prelude {
    pub use cdas_core::economics::CostModel;
    pub use cdas_core::model::QualitySensitiveModel;
    pub use cdas_core::online::TerminationStrategy;
    pub use cdas_core::prediction::PredictionModel;
    pub use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};
    pub use cdas_core::types::{Label, Observation, QuestionId, Vote, WorkerId};
    pub use cdas_core::verification::probabilistic::ProbabilisticVerifier;
    pub use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
    pub use cdas_core::verification::{Verdict, Verifier};
    pub use cdas_crowd::arrival::LatencyModel;
    pub use cdas_crowd::clock::SimClock;
    pub use cdas_crowd::failpoint::{Failpoint, FailpointPlatform};
    pub use cdas_crowd::lease::{LeaseId, PoolLedger, WorkerLease};
    pub use cdas_crowd::pool::{PoolConfig, WorkerPool};
    pub use cdas_crowd::sharded::{PlatformShard, ShardedPlatform};
    pub use cdas_crowd::spec::CrowdSpec;
    pub use cdas_crowd::{ArrivalQueue, CancelReceipt, CrowdPlatform, SimulatedPlatform};
    pub use cdas_engine::apps::{ImageTaggingApp, ItConfig, TsaApp, TsaConfig};
    pub use cdas_engine::clocked::{ClockedCollector, ClockedOutcome};
    pub use cdas_engine::engine::WorkerCountPolicy;
    pub use cdas_engine::fleet::{
        ExecutionMode, Fleet, FleetBuilder, FleetEvent, FleetFailpoints, FleetRun, JobSpec,
    };
    pub use cdas_engine::job_manager::{AnalyticsJob, JobKind, JobManager};
    pub use cdas_engine::journal::{
        Journal, JournalConfig, JournalRecord, RecoveryReport, RunConfig, SyncPolicy,
    };
    pub use cdas_engine::metrics::{FleetReport, JobReport, ShardReport};
    pub use cdas_engine::scheduler::{
        ArrivalDiscovery, DispatchPolicy, JobId, JobScheduler, ScheduledJob, SchedulerConfig,
    };
    pub use cdas_engine::service::{
        AdmissionDecision, AdmissionForecast, AdmissionModel, FleetService, JobTicket, Rejected,
        ServiceConfig, ServiceEvent, ServiceRecovery, ServiceReport,
    };
    pub use cdas_engine::{CrowdsourcingEngine, EngineConfig, Query, VerificationStrategy};
    pub use cdas_workloads::it::images::{ImageGenerator, ImageGeneratorConfig};
    pub use cdas_workloads::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let model = PredictionModel::new(0.8).unwrap();
        assert!(model.refined_workers(0.9).unwrap() >= 1);
        let _ = CostModel::default();
    }
}
