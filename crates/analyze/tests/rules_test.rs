//! Fixture-based self-tests: every rule gets one seeded violation and one
//! clean counterpart, exercised through the same `run_on` entry point the
//! CLI uses.

use std::collections::BTreeMap;

use cdas_analyze::rules::{CodecSpec, ProtocolSpec};
use cdas_analyze::scan::SourceFile;
use cdas_analyze::{fingerprint, run_on, Config, Violation};

/// A one-file scan set.
fn scan_one(path: &str, text: &str) -> BTreeMap<String, SourceFile> {
    let mut files = BTreeMap::new();
    files.insert(path.to_string(), SourceFile::scan(path, text));
    files
}

/// A config with no codec/must-use entries, so only line rules fire.
fn line_rules_config() -> Config {
    Config {
        root: ".".into(),
        scan_dirs: vec![],
        codecs: vec![],
        must_use_types: vec![],
        io_needles: vec![".append(", ".sync("],
        protocols: vec![ProtocolSpec::default()],
    }
}

/// A config whose only rule surface is a service-style `JobTicket` protocol.
fn job_ticket_config() -> Config {
    Config {
        root: ".".into(),
        scan_dirs: vec![],
        codecs: vec![],
        must_use_types: vec![],
        io_needles: vec![],
        protocols: vec![ProtocolSpec {
            publish_calls: vec!["submit"],
            collect_calls: vec!["poll", "subscribe", "shutdown"],
            ticket_type: "JobTicket",
            journal_paths: vec!["src/service/"],
        }],
    }
}

fn findings(text: &str) -> Vec<Violation> {
    run_on(&line_rules_config(), &scan_one("src/lib.rs", text))
}

fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn determinism_flags_hash_containers_and_wall_clock() {
    let bad = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
    let got = findings(bad);
    assert_eq!(rules_fired(&got), vec!["determinism"]);
    assert_eq!(got.len(), 2);
}

#[test]
fn determinism_clean_on_ordered_containers() {
    let clean = "use std::collections::BTreeMap;\nfn f(c: &SimClock) -> f64 { c.now() }\n";
    assert!(findings(clean).is_empty());
}

#[test]
fn determinism_ignores_test_code_and_allows() {
    let text = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(findings(text).is_empty());
    let allowed = "// cdas-allow(determinism): timing telemetry only\nlet t = Instant::now();\n";
    assert!(findings(allowed).is_empty());
}

#[test]
fn panic_freedom_flags_unwrap_expect_macros_and_indexing() {
    let got = findings(
        "fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + v.iter().next().expect(\"x\") }\n",
    );
    assert_eq!(rules_fired(&got), vec!["panic_freedom"]);
    assert_eq!(got.len(), 2);
    let got = findings("fn f() { panic!(\"boom\"); }\n");
    assert_eq!(got.len(), 1);
    let got = findings("fn f(v: &[u32]) -> u32 { v[0] }\n");
    assert_eq!(got.len(), 1, "bare indexing: {got:?}");
}

#[test]
fn panic_freedom_clean_cases() {
    // expect_err is a different method; slices typed `&'a [u8]` are not
    // indexing; `vec![..]` and attributes use non-indexing brackets; strings
    // and comments are not code.
    let clean = concat!(
        "fn f(r: Result<u32, u32>) -> u32 { r.expect_err(\"inverted\") }\n",
        "fn g<'a>(v: &'a [u8]) -> Option<&'a u8> { v.first() }\n",
        "#[derive(Debug)]\n",
        "struct S;\n",
        "fn h() -> Vec<u32> { vec![1, 2] }\n",
        "fn s() -> &'static str { \"do not unwrap() me\" } // unwrap() in comment\n",
        "fn k(ranked: &mut [(u32, f64)]) { ranked.sort(); }\n",
        "fn m(arr: &[u8; 4]) -> &u8 { let [first, ..] = arr; first }\n",
    );
    assert!(findings(clean).is_empty(), "{:?}", findings(clean));
}

#[test]
fn panic_freedom_respects_test_regions_and_allows() {
    let text = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(findings(text).is_empty());
    let trailing =
        "fn f(v: Option<u32>) -> u32 { v.unwrap() } // cdas-allow(panic_freedom): fixture\n";
    assert!(findings(trailing).is_empty());
}

#[test]
fn lock_discipline_flags_guard_held_across_io() {
    let bad = "fn f(&self, io: &mut W) {\n    let guard = self.state.lock();\n    io.append(*guard);\n}\n";
    let got = findings(bad);
    assert_eq!(rules_fired(&got), vec!["lock_discipline"]);
    assert_eq!(got[0].line, 3);
}

#[test]
fn lock_discipline_clean_when_dropped_or_through_guard() {
    let dropped = "fn f(&self, io: &mut W) {\n    let guard = self.state.lock();\n    let v = *guard;\n    drop(guard);\n    io.append(v);\n}\n";
    assert!(findings(dropped).is_empty());
    // Calling I/O *through* the guard is the point of holding it.
    let through =
        "fn f(&self) {\n    let journal = self.journal.lock();\n    journal.append(1);\n}\n";
    assert!(findings(through).is_empty());
    // Scope closes before the I/O call.
    let scoped = "fn f(&self, io: &mut W) {\n    {\n        let guard = self.state.lock();\n    }\n    io.append(1);\n}\n";
    assert!(findings(scoped).is_empty());
}

#[test]
fn must_use_flags_missing_attribute_and_wrapped_returns() {
    let config = Config {
        must_use_types: vec!["CancelReceipt"],
        ..line_rules_config()
    };
    let bad = "pub struct CancelReceipt {\n    pub n: usize,\n}\n";
    let got = run_on(&config, &scan_one("src/lib.rs", bad));
    assert_eq!(rules_fired(&got), vec!["must_use"]);
    let wrapped = "pub fn cancel_all(&mut self) -> Vec<CancelReceipt> {\n    Vec::new()\n}\n";
    let got = run_on(&config, &scan_one("src/lib.rs", wrapped));
    assert_eq!(rules_fired(&got), vec!["must_use"]);
}

#[test]
fn must_use_clean_cases() {
    let config = Config {
        must_use_types: vec!["CancelReceipt"],
        ..line_rules_config()
    };
    // Attribute present; Result returns are inherently must_use (adding the
    // attribute would trip clippy::double_must_use); direct returns are
    // covered by the type-level attribute.
    let clean = concat!(
        "#[must_use = \"accounting\"]\n",
        "pub struct CancelReceipt;\n",
        "pub fn cancel(&mut self) -> Result<CancelReceipt> { todo }\n",
        "pub fn receipt(&self) -> CancelReceipt { CancelReceipt }\n",
        "#[must_use]\n",
        "pub fn try_cancel(&mut self) -> Option<CancelReceipt> { None }\n",
    );
    let got = run_on(&config, &scan_one("src/lib.rs", clean));
    assert!(got.is_empty(), "{got:?}");
}

fn codec_config() -> Config {
    Config {
        codecs: vec![CodecSpec {
            enum_name: "Verdict",
            decl_path: "src/decl.rs",
            codec_path: "src/codec.rs",
            test_paths: &["src/codec.rs"],
        }],
        ..line_rules_config()
    }
}

const VERDICT_DECL: &str = "pub enum Verdict {\n    Accepted,\n    NoAnswer,\n}\n";

#[test]
fn codec_exhaustive_flags_missing_arm_and_test() {
    let codec = concat!(
        "impl BinCodec for Verdict {\n",
        "    fn encode(&self, out: &mut Vec<u8>) {\n",
        "        match self {\n",
        "            Verdict::Accepted => out.push(0),\n",
        "            Verdict::NoAnswer => out.push(1),\n",
        "        }\n",
        "    }\n",
        "    fn decode(input: &mut &[u8]) -> CodecResult<Self> {\n",
        "        match tag {\n",
        "            0 => Ok(Verdict::Accepted),\n",
        "            other => Err(other),\n",
        "        }\n",
        "    }\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn rt() { round_trip(Verdict::Accepted); }\n",
        "}\n",
    );
    let mut files = scan_one("src/decl.rs", VERDICT_DECL);
    files.insert(
        "src/codec.rs".into(),
        SourceFile::scan("src/codec.rs", codec),
    );
    let got = run_on(&codec_config(), &files);
    assert_eq!(rules_fired(&got), vec!["codec_exhaustive"]);
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].message.contains("Verdict::NoAnswer"));
    assert!(got[0].message.contains("decode arm"));
    assert!(got[0].message.contains("round-trip test mention"));
}

#[test]
fn codec_exhaustive_clean_when_complete() {
    let codec = concat!(
        "impl BinCodec for Verdict {\n",
        "    fn encode(&self, out: &mut Vec<u8>) {\n",
        "        match self {\n",
        "            Verdict::Accepted => out.push(0),\n",
        "            Verdict::NoAnswer => out.push(1),\n",
        "        }\n",
        "    }\n",
        "    fn decode(input: &mut &[u8]) -> CodecResult<Self> {\n",
        "        match tag {\n",
        "            0 => Ok(Verdict::Accepted),\n",
        "            1 => Ok(Verdict::NoAnswer),\n",
        "            other => Err(other),\n",
        "        }\n",
        "    }\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn rt() { round_trip(Verdict::Accepted); round_trip(Verdict::NoAnswer); }\n",
        "}\n",
    );
    let mut files = scan_one("src/decl.rs", VERDICT_DECL);
    files.insert(
        "src/codec.rs".into(),
        SourceFile::scan("src/codec.rs", codec),
    );
    let got = run_on(&codec_config(), &files);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn codec_exhaustive_flags_missing_files() {
    let files = scan_one("src/decl.rs", VERDICT_DECL);
    let got = run_on(&codec_config(), &files);
    assert_eq!(rules_fired(&got), vec!["codec_exhaustive"]);
    assert!(got[0].message.contains("codec file"));
}

#[test]
fn allow_syntax_flags_unknown_rules_and_malformed_annotations() {
    let unknown = "// cdas-allow(not_a_rule): beep\nfn f() {}\n";
    let got = findings(unknown);
    assert_eq!(rules_fired(&got), vec!["allow_syntax"]);
    let malformed = "// cdas-allow(panic_freedom) missing reason colon\nfn f() {}\n";
    let got = findings(malformed);
    assert_eq!(rules_fired(&got), vec!["allow_syntax"]);
    let empty_reason = "// cdas-allow(panic_freedom):\nfn f() {}\n";
    let got = findings(empty_reason);
    assert_eq!(rules_fired(&got), vec!["allow_syntax"]);
}

#[test]
fn allow_syntax_clean_on_valid_annotation() {
    let valid = "// cdas-allow(panic_freedom, determinism): both justified here\nlet t = Instant::now().elapsed().as_secs_f64().to_string().parse().unwrap();\n";
    assert!(findings(valid).is_empty());
}

#[test]
fn scanner_strips_strings_comments_and_char_literals() {
    let text = concat!(
        "fn f() -> &'static str {\n",
        "    /* block comment with unwrap() and panic! */\n",
        "    let c = '[';\n",
        "    \"string with .unwrap() and HashMap\"\n",
        "}\n",
        "// line comment: .expect( nothing )\n",
        "fn raw() -> &'static str { r#\"raw .unwrap() string\"# }\n",
    );
    assert!(findings(text).is_empty(), "{:?}", findings(text));
}

#[test]
fn fingerprints_collapse_whitespace() {
    assert_eq!(fingerprint("   let  x =\t1;  "), fingerprint("let x = 1;"));
}

#[test]
fn protocol_order_flags_a_dropped_job_ticket() {
    let text = concat!(
        "impl Service {\n",
        "    pub fn run(&mut self) {\n",
        "        let ticket = self.submit(1);\n",
        "        drop(ticket);\n",
        "    }\n",
        "}\n",
    );
    let got = run_on(&job_ticket_config(), &scan_one("src/service/mod.rs", text));
    assert_eq!(rules_fired(&got), vec!["protocol_order"]);
    assert!(
        got.iter().any(|v| v.message.contains("dropped without")),
        "{got:?}"
    );
}

#[test]
fn protocol_order_clean_when_job_ticket_reaches_poll() {
    let text = concat!(
        "impl Service {\n",
        "    pub fn run(&mut self) {\n",
        "        let ticket = self.submit(1);\n",
        "        self.poll(ticket);\n",
        "    }\n",
        "}\n",
    );
    let got = run_on(&job_ticket_config(), &scan_one("src/service/mod.rs", text));
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn protocol_order_flags_an_unconsumed_job_ticket_param() {
    let text = concat!(
        "pub fn forget(ticket: JobTicket) {\n",
        "    let _unrelated = 1;\n",
        "}\n",
    );
    let got = run_on(&job_ticket_config(), &scan_one("src/service/mod.rs", text));
    assert_eq!(rules_fired(&got), vec!["protocol_order"]);
    assert!(
        got.iter().any(|v| v.message.contains("never reaches")),
        "{got:?}"
    );
}

#[test]
fn protocol_order_checks_manifest_appends_in_service_paths() {
    let text = concat!(
        "impl Service {\n",
        "    pub fn record(&mut self, rec: u64) {\n",
        "        self.spent += 1.0;\n",
        "        self.manifest.append(rec);\n",
        "    }\n",
        "}\n",
    );
    let got = run_on(
        &job_ticket_config(),
        &scan_one("src/service/manifest.rs", text),
    );
    assert_eq!(rules_fired(&got), vec!["protocol_order"]);
    assert!(
        got.iter()
            .any(|v| v.message.contains("before the journal append")),
        "{got:?}"
    );
    // The same file outside a service path is not journal-checked.
    let elsewhere = run_on(&job_ticket_config(), &scan_one("src/metrics.rs", text));
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}
