//! Fixture: a fully clean file — no rule may fire here.
use std::collections::BTreeMap;

pub fn sorted_sum(map: &BTreeMap<u32, u32>) -> u32 {
    map.values().copied().sum()
}

pub fn safe_head(values: &[u32]) -> Option<u32> {
    values.first().copied()
}
