//! Fixture: seeds the journal half of protocol-order — the counter is
//! bumped before the append that records it.

pub struct Recovery {
    hits: u64,
    journal: Journal,
}

impl Recovery {
    pub fn on_commit(&mut self, record: u64) {
        self.hits += 1;
        self.journal.append(record);
    }
}
