//! Fixture: seeds a protocol-order violation — a second ticket is minted and
//! dropped without a `cdas-allow(protocol_order)` annotation.

#[must_use]
pub struct BatchTicket {
    pub hit: u64,
}

pub struct Engine;

impl Engine {
    pub fn publish_batch(&self) -> BatchTicket {
        BatchTicket { hit: 1 }
    }

    pub fn collect_batch(&self, ticket: BatchTicket) -> u64 {
        let BatchTicket { hit } = ticket;
        hit
    }

    pub fn run(&self) -> u64 {
        let ticket = self.publish_batch();
        let orphan = self.publish_batch();
        drop(orphan);
        self.collect_batch(ticket)
    }
}
