//! Fixture: seeds an allow-syntax violation (unknown rule name) and shows a
//! valid annotation suppressing a finding.
pub fn misannotated() -> u32 {
    // cdas-allow(not_a_rule): typos must not silently disable lints
    let v: Option<u32> = Some(1);
    v.unwrap_or(0)
}

pub fn properly_allowed(v: Option<u32>) -> u32 {
    // cdas-allow(panic_freedom): fixture demonstrates a justified escape hatch
    v.unwrap()
}
