//! Fixture: seeds a lock-order cycle — `forward` takes `left` then `right`,
//! `backward` takes them in the opposite order.
use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.left.lock();
        let b = self.right.lock();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.right.lock();
        let a = self.left.lock();
        *a + *b
    }
}
