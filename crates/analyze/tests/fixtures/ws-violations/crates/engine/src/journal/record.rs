//! Fixture: complete codecs for `JournalRecord`, `FleetEvent`, and
//! `ExecutionMode` — the codec rule's clean case for multi-enum files.
pub enum JournalRecord {
    Started,
    Finished,
}

impl BinCodec for JournalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Started => out.push(0),
            JournalRecord::Finished => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match tag {
            0 => Ok(JournalRecord::Started),
            1 => Ok(JournalRecord::Finished),
            other => Err(other),
        }
    }
}

impl BinCodec for FleetEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FleetEvent::JobStarted => out.push(0),
            FleetEvent::JobCompleted => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match tag {
            0 => Ok(FleetEvent::JobStarted),
            1 => Ok(FleetEvent::JobCompleted),
            other => Err(other),
        }
    }
}

impl BinCodec for ExecutionMode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ExecutionMode::EndOfTime => out.push(0),
            ExecutionMode::Clocked => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match tag {
            0 => Ok(ExecutionMode::EndOfTime),
            1 => Ok(ExecutionMode::Clocked),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips() {
        round_trip(JournalRecord::Started);
        round_trip(JournalRecord::Finished);
        round_trip(FleetEvent::JobStarted);
        round_trip(FleetEvent::JobCompleted);
        round_trip(ExecutionMode::EndOfTime);
        round_trip(ExecutionMode::Clocked);
    }
}
