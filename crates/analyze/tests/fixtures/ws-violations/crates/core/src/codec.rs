//! Fixture codec file: `Verdict` is missing its `NoAnswer` decode arm and
//! round-trip test mention; `TerminationStrategy` is fully covered (clean).
use super::online::termination::TerminationStrategy;
use super::verification::Verdict;

impl BinCodec for Verdict {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Verdict::Accepted => out.push(0),
            Verdict::NoAnswer => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match tag {
            0 => Ok(Verdict::Accepted),
            other => Err(other),
        }
    }
}

impl BinCodec for TerminationStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TerminationStrategy::MinMax => out.push(0),
            TerminationStrategy::MinExp => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match tag {
            0 => Ok(TerminationStrategy::MinMax),
            1 => Ok(TerminationStrategy::MinExp),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips() {
        round_trip(Verdict::Accepted);
        round_trip(TerminationStrategy::MinMax);
        round_trip(TerminationStrategy::MinExp);
    }
}
