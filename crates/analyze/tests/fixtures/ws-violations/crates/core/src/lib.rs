//! Fixture: seeds one determinism violation and one panic-freedom violation.
//! These files are analyzer inputs, not compiled Rust.
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u32, u32>) -> u32 {
    *map.get(&0).unwrap()
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely; this must NOT be reported.
    #[test]
    fn in_test_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
