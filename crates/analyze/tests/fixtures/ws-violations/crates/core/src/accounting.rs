//! Fixture: seeds three unit-taint violations — minutes added to a dollar
//! total, a probability field assigned a literal outside [0, 1], and a
//! minutes value passed to a dollars parameter.

pub struct Meter {
    pub total_cost: f64,
    pub reclaimed_minutes: f64,
    pub accuracy: f64,
}

impl Meter {
    pub fn absorb(&mut self, extra_minutes: f64) {
        self.total_cost += extra_minutes;
    }

    pub fn reset(&mut self) {
        self.accuracy = 1.5;
    }
}

pub fn spend(cost: f64) -> f64 {
    cost
}

pub fn misuse(m: &Meter) -> f64 {
    spend(m.reclaimed_minutes)
}
