//! Fixture: seeds one must-use violation (`CancelReceipt` lacks the
//! attribute) and one lock-discipline violation (guard held across `.append`).
use std::sync::Mutex;

pub struct CancelReceipt {
    pub answers_cancelled: usize,
}

pub struct Sink {
    state: Mutex<u32>,
}

impl Sink {
    pub fn flush(&self, io: &mut Writer) {
        let guard = self.state.lock();
        io.append(*guard);
    }

    pub fn flush_politely(&self, io: &mut Writer) {
        // The clean shape: release the guard before touching I/O.
        let guard = self.state.lock();
        let value = *guard;
        drop(guard);
        io.append(value);
    }
}
