//! Fixture: declares the `Verdict` enum whose codec (in ../codec.rs) is
//! deliberately missing the `NoAnswer` decode arm and test mention.
pub enum Verdict {
    Accepted,
    NoAnswer,
}
