//! Fixture: a fully codec-covered enum — the codec rule's clean case.
pub enum TerminationStrategy {
    MinMax,
    MinExp,
}
