//! Fixture: the clean counterpart of ws-violations/crates/core/src/lib.rs —
//! ordered container, no panicking calls.
use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, u32>) -> Option<u32> {
    map.get(&0).copied()
}
