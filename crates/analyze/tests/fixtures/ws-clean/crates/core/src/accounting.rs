//! Fixture: the clean counterpart — same shapes, consistent units. Scaling
//! by a rate (multiplication) legitimately changes units and stays silent.

pub struct Meter {
    pub total_cost: f64,
    pub reclaimed_minutes: f64,
    pub accuracy: f64,
    pub cost_per_minute: f64,
}

impl Meter {
    pub fn absorb(&mut self, extra_cost: f64) {
        self.total_cost += extra_cost;
    }

    pub fn absorb_time(&mut self, extra_minutes: f64) {
        self.total_cost += extra_minutes * self.cost_per_minute;
    }

    pub fn reset(&mut self) {
        self.accuracy = 0.5;
    }
}

pub fn spend(cost: f64) -> f64 {
    cost
}

pub fn use_correctly(m: &Meter) -> f64 {
    spend(m.total_cost)
}
