//! Fixture: the clean counterpart — append first, then mutate the state the
//! record justifies.

pub struct Recovery {
    hits: u64,
    journal: Journal,
}

impl Recovery {
    pub fn on_commit(&mut self, record: u64) {
        self.journal.append(record);
        self.hits += 1;
    }
}
