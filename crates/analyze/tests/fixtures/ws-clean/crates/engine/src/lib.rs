//! Fixture: a correctly-formed `cdas-allow` annotation — the escape hatch in
//! its valid shape, suppressing the finding without tripping allow_syntax.
pub fn properly_allowed(v: Option<u32>) -> u32 {
    // cdas-allow(panic_freedom): fixture demonstrates a justified escape hatch
    v.unwrap()
}
