//! Fixture: declares the event/mode enums; their codecs in journal/record.rs
//! are complete, so the codec rule stays quiet about them.
pub enum FleetEvent {
    JobStarted,
    JobCompleted,
}

pub enum ExecutionMode {
    EndOfTime,
    Clocked,
}
