//! Fixture: the clean counterpart — every ticket reaches the collect family,
//! and the one deliberate drop carries an allow annotation.

#[must_use]
pub struct BatchTicket {
    pub hit: u64,
}

pub struct Engine;

impl Engine {
    pub fn publish_batch(&self) -> BatchTicket {
        BatchTicket { hit: 1 }
    }

    pub fn collect_batch(&self, ticket: BatchTicket) -> u64 {
        let BatchTicket { hit } = ticket;
        hit
    }

    pub fn run(&self) -> u64 {
        let ticket = self.publish_batch();
        self.collect_batch(ticket)
    }

    pub fn run_and_abandon(&self) -> u64 {
        let ticket = self.publish_batch();
        // cdas-allow(protocol_order): fixture exercises the sanctioned drop
        drop(ticket);
        0
    }
}
