//! Fixture: the clean counterpart — every function acquires `left` before
//! `right`, so the acquisition graph has one edge and no cycle.
use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.left.lock();
        let b = self.right.lock();
        *a + *b
    }

    pub fn forward_again(&self) -> u32 {
        let a = self.left.lock();
        let b = self.right.lock();
        *b - *a
    }
}
