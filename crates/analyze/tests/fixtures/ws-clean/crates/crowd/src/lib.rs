//! Fixture: the clean counterpart of the crowd file — the receipt carries
//! `#[must_use]` and the guard is released before I/O.
use std::sync::Mutex;

#[must_use = "dropping the receipt discards the accounting"]
pub struct CancelReceipt {
    pub answers_cancelled: usize,
}

pub struct Sink {
    state: Mutex<u32>,
}

impl Sink {
    pub fn flush(&self, io: &mut Writer) {
        let guard = self.state.lock();
        let value = *guard;
        drop(guard);
        io.append(value);
    }
}
