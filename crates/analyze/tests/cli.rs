//! End-to-end tests of the `cdas-analyze` binary against the fixture
//! workspaces, plus the regression test that the committed baseline parses
//! and matches `--check` output on the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn analyze(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cdas-analyze"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn check_exits_nonzero_on_each_seeded_fixture_violation() {
    let ws = fixtures().join("ws-violations");
    let out = analyze(&["--check", "--root", ws.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "seeded violations must fail");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    for rule in [
        "determinism",
        "panic_freedom",
        "codec_exhaustive",
        "lock_discipline",
        "must_use",
        "allow_syntax",
        "lock_order",
        "unit_taint",
        "protocol_order",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "rule {rule} did not fire on its seeded fixture:\n{stdout}"
        );
    }
    // The valid escape hatch in engine/src/lib.rs must have suppressed its
    // unwrap — only the seeded sites may be reported.
    assert!(
        !stdout.contains("properly_allowed"),
        "cdas-allow failed to suppress:\n{stdout}"
    );
}

#[test]
fn check_exits_zero_on_clean_fixture_workspace() {
    let ws = fixtures().join("ws-clean");
    let out = analyze(&["--check", "--root", ws.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture flagged:\n{stdout}"
    );
}

#[test]
fn json_output_is_machine_readable() {
    let ws = fixtures().join("ws-violations");
    let out = analyze(&[
        "--check",
        "--root",
        ws.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.trim_start().starts_with('{'), "not JSON:\n{stdout}");
    assert!(stdout.contains("\"violations\""));
    assert!(stdout.contains("\"rule\": \"panic_freedom\""));
    assert!(stdout.contains("\"stale_baseline_entries\": 0"));
}

#[test]
fn cross_file_rules_report_the_seeded_sites() {
    let ws = fixtures().join("ws-violations");
    let out = analyze(&["--check", "--root", ws.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    // lock_order: both edges of the left/right cycle are reported.
    assert!(
        stdout.contains("lock-order cycle"),
        "no cycle message:\n{stdout}"
    );
    assert!(stdout.contains("lockorder.rs"));
    // unit_taint: the three seeded confusions.
    assert!(
        stdout.contains("mixes dollars `total_cost` and minutes `extra_minutes`"),
        "minutes-into-dollars not flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("probability `accuracy` assigned literal outside [0, 1]"),
        "probability literal not flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("minutes `reclaimed_minutes` passed to `spend` parameter `cost` (dollars)"),
        "call-arg mismatch not flagged:\n{stdout}"
    );
    // protocol_order: the unannotated drop and the mutate-before-append.
    assert!(
        stdout.contains("ticket `orphan` dropped without cdas-allow"),
        "orphan drop not flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("mutates `self` before the journal append"),
        "mutate-before-append not flagged:\n{stdout}"
    );
}

#[test]
fn github_format_emits_workflow_annotations() {
    let ws = fixtures().join("ws-violations");
    let out = analyze(&[
        "--check",
        "--root",
        ws.to_str().expect("utf-8 path"),
        "--format",
        "github",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let annotation = stdout
        .lines()
        .find(|l| l.starts_with("::error file="))
        .unwrap_or_else(|| panic!("no ::error annotation:\n{stdout}"));
    assert!(
        annotation.contains(",line="),
        "annotation lacks line: {annotation}"
    );
    assert!(
        annotation.contains("::"),
        "annotation lacks message: {annotation}"
    );
    // Every new finding gets exactly one annotation; the summary line stays.
    let errors = stdout.lines().filter(|l| l.starts_with("::error")).count();
    assert!(errors > 0);
    assert!(
        stdout.lines().any(|l| l.starts_with("cdas-analyze: ")),
        "summary line missing:\n{stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(analyze(&[]).status.code(), Some(2));
    assert_eq!(analyze(&["--frobnicate"]).status.code(), Some(2));
    assert_eq!(
        analyze(&["--check", "--format", "yaml"]).status.code(),
        Some(2)
    );
}

#[test]
fn stale_baseline_entries_fail_the_check() {
    // A baseline claiming a violation that no longer exists must fail, so the
    // committed inventory can only shrink truthfully.
    let ws = fixtures().join("ws-clean");
    let dir = std::env::temp_dir().join("cdas-analyze-stale-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let baseline = dir.join("baseline.txt");
    std::fs::write(
        &baseline,
        "panic_freedom\tcrates/core/src/lib.rs\t1\tlong gone line\n",
    )
    .expect("write baseline");
    let out = analyze(&[
        "--check",
        "--root",
        ws.to_str().expect("utf-8 path"),
        "--baseline",
        baseline.to_str().expect("utf-8 path"),
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale entry accepted:\n{stdout}"
    );
    assert!(stdout.contains("stale baseline entry"));
}

#[test]
fn committed_baseline_parses_and_matches_workspace_check() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("analyze-baseline.txt"))
        .expect("committed baseline exists");
    let baseline = cdas_analyze::baseline::Baseline::parse(&text).expect("baseline parses");
    // The grandfathered debt was fully paid down; the file stays as the
    // shrink-only ratchet, so it must never grow back.
    assert_eq!(baseline.total(), 0, "baseline must stay empty");
    for (rule, _, _) in baseline.entries.keys() {
        assert!(
            cdas_analyze::rules::is_known_rule(rule),
            "baseline names unknown rule {rule}"
        );
    }
    let config = cdas_analyze::Config::workspace(&root);
    let violations = cdas_analyze::run(&config).expect("workspace scans");
    let outcome = cdas_analyze::baseline::check(&violations, &baseline);
    assert!(
        outcome.is_clean(),
        "workspace does not match committed baseline: {} new {:?}, {} stale {:?}",
        outcome.new.len(),
        outcome.new.first(),
        outcome.stale.len(),
        outcome.stale.first(),
    );
    assert_eq!(outcome.grandfathered, baseline.total());
}
