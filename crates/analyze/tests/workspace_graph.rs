//! Pass-2 pins against the *real* workspace: the symbol index resolves the
//! functions the cross-file rules depend on, the lock-acquisition graph
//! contains exactly the lock classes the prod crates own, and that graph is
//! cycle-free (the acceptance criterion for `lock_order`).

use std::path::Path;

use cdas_analyze::{build_pass2, scan_workspace, Config};

fn workspace() -> (
    Config,
    std::collections::BTreeMap<String, cdas_analyze::scan::SourceFile>,
) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = Config::workspace(root);
    let files = scan_workspace(&config).expect("workspace scan");
    (config, files)
}

#[test]
fn index_resolves_unique_names_and_rejects_ambiguous_ones() {
    let (config, files) = workspace();
    let mut out = Vec::new();
    let (index, _, _) = build_pass2(&config, &files, &mut out);
    // Unique guard helpers the lock rule leans on.
    for name in ["locked", "relock", "read_stripe", "write_stripe"] {
        assert!(
            index.resolve(name).is_some(),
            "`{name}` should resolve uniquely"
        );
    }
    // Ambiguous names must never resolve — that is the zero-false-positive
    // contract of unique-name resolution.
    for name in ["append", "release", "snapshot", "new", "default_accuracy"] {
        assert!(
            index.resolve(name).is_none(),
            "`{name}` is defined more than once and must stay unresolved"
        );
    }
    // The struct-field type table gates unit classification.
    assert!(index.is_f64_field("recovered_cost"));
    assert!(index.is_f64_field("reclaimed_minutes"));
    assert!(!index.is_f64_field("workers_assigned"));
}

#[test]
fn lock_graph_covers_prod_locks_and_is_cycle_free() {
    let (config, files) = workspace();
    let mut out = Vec::new();
    let (_, _, lock_graph) = build_pass2(&config, &files, &mut out);
    // Every lock the prod crates own shows up as a class.
    for class in [
        "crates/crowd/src/lease.rs:table",
        "crates/core/src/sharing.rs:stripe",
        "crates/engine/src/journal/recovery.rs:state",
        "crates/engine/src/journal/recovery.rs:journal",
        "crates/engine/src/journal/recovery.rs:failure",
    ] {
        assert!(
            lock_graph.classes.contains(class),
            "lock class `{class}` missing from graph; classes: {:?}",
            lock_graph.classes
        );
    }
    // The sink acquires failure before journal, consistently — the one
    // ordered pair in the workspace.
    assert!(
        lock_graph
            .edges
            .keys()
            .any(|(held, acquired)| held.ends_with(":failure") && acquired.ends_with(":journal")),
        "expected failure -> journal edge; edges: {:?}",
        lock_graph.edges.keys().collect::<Vec<_>>()
    );
    // Acceptance criterion: the acquisition graph is cycle-free.
    assert!(
        lock_graph.cyclic_edges().is_empty(),
        "lock-order cycle in prod code: {:?}",
        lock_graph
            .cyclic_edges()
            .iter()
            .map(|e| format!("{} -> {} at {}:{}", e.held, e.acquired, e.path, e.line))
            .collect::<Vec<_>>()
    );
    // And the collection walk itself surfaced no held-across-I/O findings.
    assert!(
        out.is_empty(),
        "lock_order I/O findings in prod code: {out:?}"
    );
}
