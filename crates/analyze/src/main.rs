//! CLI front end for the `cdas-analyze` static-analysis pass.
//!
//! Usage:
//!
//! ```text
//! cdas-analyze --check [--root DIR] [--baseline FILE] [--format text|json|github]
//! cdas-analyze --write-baseline [--root DIR] [--baseline FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` violations (new findings or a stale baseline),
//! `2` usage or I/O error. The JSON format is machine-readable for CI; the
//! github format emits `::error file=…,line=…::…` workflow annotations so
//! findings render inline on pull requests.

use std::path::PathBuf;
use std::process::ExitCode;

use cdas_analyze::baseline::{check, Baseline};
use cdas_analyze::{run, Config, Violation};

/// Parsed command-line options.
struct Options {
    /// `--check` or `--write-baseline`.
    mode: Mode,
    /// Workspace root (defaults to the current directory).
    root: PathBuf,
    /// Baseline path (defaults to `<root>/analyze-baseline.txt`).
    baseline: Option<PathBuf>,
    /// Output format for `--check`.
    format: Format,
}

enum Mode {
    Check,
    WriteBaseline,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cdas-analyze (--check | --write-baseline) \
         [--root DIR] [--baseline FILE] [--format text|json|github]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ()> {
    let mut mode = None;
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--write-baseline" => mode = Some(Mode::WriteBaseline),
            "--root" => root = PathBuf::from(args.next().ok_or(())?),
            "--baseline" => baseline = Some(PathBuf::from(args.next().ok_or(())?)),
            "--format" => {
                format = match args.next().ok_or(())?.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "github" => Format::Github,
                    _ => return Err(()),
                }
            }
            _ => return Err(()),
        }
    }
    Ok(Options {
        mode: mode.ok_or(())?,
        root,
        baseline,
        format,
    })
}

/// Minimal JSON string escaping (the serde shim is a no-op, so the binary
/// renders its machine-readable output by hand, like the bench JSON codec).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a message for a GitHub workflow-command data section: `%`, `\r`,
/// and `\n` are percent-encoded per the workflow-command grammar.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn render_json(new: &[Violation], stale: usize, grandfathered: usize) -> String {
    let mut out = String::from("{\n  \"violations\": [\n");
    for (i, v) in new.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            v.rule,
            json_escape(&v.path),
            v.line,
            json_escape(&v.message),
            if i + 1 < new.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"new\": {},\n  \"stale_baseline_entries\": {},\n  \"grandfathered\": {}\n}}\n",
        new.len(),
        stale,
        grandfathered
    ));
    out
}

fn main() -> ExitCode {
    let Ok(opts) = parse_args() else {
        return usage();
    };
    let config = Config::workspace(&opts.root);
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze-baseline.txt"));

    let violations = match run(&config) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cdas-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.mode {
        Mode::WriteBaseline => {
            let baseline = Baseline::from_violations(&violations);
            if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
                eprintln!("cdas-analyze: write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!(
                "wrote {} entries ({} occurrences) to {}",
                baseline.entries.len(),
                baseline.total(),
                baseline_path.display()
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let baseline = if baseline_path.is_file() {
                let text = match std::fs::read_to_string(&baseline_path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cdas-analyze: read {}: {e}", baseline_path.display());
                        return ExitCode::from(2);
                    }
                };
                match Baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("cdas-analyze: {}: {e}", baseline_path.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                Baseline::default()
            };
            let outcome = check(&violations, &baseline);
            match opts.format {
                Format::Json => print!(
                    "{}",
                    render_json(&outcome.new, outcome.stale.len(), outcome.grandfathered)
                ),
                Format::Github => {
                    for v in &outcome.new {
                        println!(
                            "::error file={},line={},title=cdas-analyze {}::{}",
                            v.path,
                            v.line,
                            v.rule,
                            github_escape(&v.message)
                        );
                    }
                    for ((rule, path, fp), allowed, actual) in &outcome.stale {
                        println!(
                            "::error file={path},title=cdas-analyze stale baseline::{rule} entry \
                             allows {allowed} but found {actual} ({}); shrink the baseline",
                            github_escape(fp)
                        );
                    }
                    println!(
                        "cdas-analyze: {} new, {} stale baseline entries, {} grandfathered",
                        outcome.new.len(),
                        outcome.stale.len(),
                        outcome.grandfathered
                    );
                }
                Format::Text => {
                    for v in &outcome.new {
                        println!("{v}");
                    }
                    for ((rule, path, fp), allowed, actual) in &outcome.stale {
                        println!(
                            "stale baseline entry: {rule}\t{path}\t{allowed}->{actual}\t{fp} \
                             (violation fixed; shrink the baseline)"
                        );
                    }
                    println!(
                        "cdas-analyze: {} new, {} stale baseline entries, {} grandfathered",
                        outcome.new.len(),
                        outcome.stale.len(),
                        outcome.grandfathered
                    );
                }
            }
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}
