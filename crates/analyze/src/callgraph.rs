//! Pass 2 infrastructure: the approximate call graph and the lock-acquisition
//! graph built over it.
//!
//! Calls are matched lexically (`ident(`), resolved against the symbol index
//! by unique name only (see [`crate::index::WorkspaceIndex::resolve`]), and
//! used for two derived facts per function: the set of lock classes its
//! transitive closure may acquire, and whether that closure may perform
//! platform/journal I/O. A *lock class* names one `Mutex`/`RwLock` value —
//! `(defining file, field name)`, e.g. `crates/crowd/src/lease.rs:table` —
//! so the two stripes helpers of `SharedAccuracyRegistry` collapse into one
//! `stripes` class, which is exactly the granularity deadlock ordering needs.
//!
//! Guard-returning helpers (`fn ... -> MutexGuard<..>`) are first-class: a
//! call like `self.state()` acquires the callee's internal class, and a
//! generic relock helper called as `Self::relock(&self.journal)` is resolved
//! to the *argument's* field (`journal`), not the helper's opaque type
//! parameter.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::WorkspaceIndex;
use crate::scan::{SourceFile, SourceLine};

/// Rust keywords and control forms that look like calls lexically.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "else", "move", "in", "as",
    "impl", "where", "unsafe", "dyn", "ref", "mut", "pub", "use", "mod", "crate", "self", "Self",
    "super", "break", "continue",
];

/// True when the char is part of a Rust identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// One lexical call site: the called name and its argument text (same-line
/// portion only — multi-line calls keep their first line's args).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The bare called name (`collect_batch`, `relock`, ...).
    pub name: String,
    /// Root identifier of the receiver chain (`self` for `self.a.b()`,
    /// empty for free calls).
    pub receiver_root: String,
    /// The argument text between the call's parentheses, clipped at line end.
    pub args: String,
    /// Whether the closing `)` was found on the same line (when false, `args`
    /// is a prefix of the real argument list).
    pub complete: bool,
}

/// Extracts the lexical call sites on one stripped code line.
pub fn calls_on_line(code: &str) -> Vec<CallSite> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if !is_ident(chars[i]) || chars[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident(chars[i]) {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        // A call is `ident(`; `ident!(` is a macro, `ident (` with a space is
        // a control form in practice (rustfmt), both skipped.
        if chars.get(i) != Some(&'(') {
            continue;
        }
        if NON_CALLS.contains(&name.as_str()) {
            continue;
        }
        // Closing-paren search for the same-line argument text.
        let mut depth = 0i32;
        let mut end = chars.len();
        let mut complete = false;
        for (j, &c) in chars.iter().enumerate().skip(i) {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth <= 0 {
                        end = j;
                        complete = true;
                        break;
                    }
                }
                _ => {}
            }
        }
        let args: String = chars[i + 1..end.min(chars.len())].iter().collect();
        let receiver_root = receiver_root_before(&chars, start);
        out.push(CallSite {
            name,
            receiver_root,
            args,
            complete,
        });
    }
    out
}

/// Root identifier of the receiver chain ending just before `at`
/// (`state` for `state.journal.append`), or empty for a free call.
fn receiver_root_before(chars: &[char], at: usize) -> String {
    let mut j = at;
    // Walk back over `.`/`::`-joined segments (and index brackets).
    let mut root_start = at;
    loop {
        if j == 0 {
            break;
        }
        let prev = chars[j - 1];
        if prev == '.' || prev == ':' {
            j -= 1;
            continue;
        }
        if prev == ']' {
            // Skip a bracketed index segment.
            let mut depth = 0i32;
            while j > 0 {
                match chars[j - 1] {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            continue;
        }
        if is_ident(prev) {
            while j > 0 && is_ident(chars[j - 1]) {
                j -= 1;
            }
            root_start = j;
            continue;
        }
        break;
    }
    if root_start == at {
        return String::new();
    }
    chars[root_start..]
        .iter()
        .take_while(|&&c| is_ident(c))
        .collect()
}

/// One direct lock acquisition inside a fn body.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// The lock class, `path:field`.
    pub class: String,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// Lock classes named by `.lock()`/`.read()`/`.write()` sites on a line:
/// the last field segment of the receiver chain, keyed by the file. When the
/// needle starts the line (rustfmt-split chain, `self.state\n    .lock()`),
/// the receiver is taken from the previous line's trailing chain, passed in
/// as `prev_code`.
pub fn direct_acquisitions(path: &str, code: &str, prev_code: &str, lineno: usize) -> Vec<LockAcq> {
    let mut out = Vec::new();
    for needle in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(needle) {
            let at = from + rel;
            let field = last_field_before(code, at).or_else(|| {
                if code[..at].trim().is_empty() {
                    let prev = prev_code.trim_end();
                    last_field_before(prev, prev.len())
                } else {
                    None
                }
            });
            if let Some(field) = field {
                out.push(LockAcq {
                    class: format!("{path}:{field}"),
                    line: lineno,
                });
            }
            from = at + needle.len();
        }
    }
    out
}

/// The last named segment of the chain ending at `at` (skipping a trailing
/// index): `stripes` for `self.inner.stripes[i]`, `table` for `self.table`.
fn last_field_before(code: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut j = at.min(chars.len());
    // Skip a trailing `[...]` index.
    if j > 0 && chars[j - 1] == ']' {
        let mut depth = 0i32;
        while j > 0 {
            match chars[j - 1] {
                ']' => depth += 1,
                '[' => {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
    }
    let end = j;
    while j > 0 && is_ident(chars[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(chars[j..end].iter().collect())
}

/// Fields named as `self.<field>` / `&self.<field>` inside a call's args —
/// how a generic relock helper's class is resolved at its call site.
pub fn self_fields_in_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = args[from..].find("self.") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(args[..at].chars().next_back().unwrap_or(' '));
        let field: String = args[at + 5..]
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        if before_ok && !field.is_empty() {
            out.push(field);
        }
        from = at + 5;
    }
    out
}

/// Per-function derived facts over the whole index.
#[derive(Debug)]
pub struct CallGraph {
    /// `fns[i]` → resolved callee indices (unique-name resolution).
    pub callees: Vec<Vec<usize>>,
    /// `fns[i]` → lock classes its body acquires directly.
    pub direct_locks: Vec<Vec<LockAcq>>,
    /// `fns[i]` → lock classes reachable through its transitive closure
    /// (including its own).
    pub reachable_locks: Vec<BTreeSet<String>>,
    /// `fns[i]` → whether its transitive closure touches an I/O needle.
    pub reachable_io: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph: one pass over every fn body for calls/locks/IO,
    /// then a fixpoint for the transitive sets.
    pub fn build(
        files: &BTreeMap<String, SourceFile>,
        index: &WorkspaceIndex,
        io_needles: &[&str],
    ) -> CallGraph {
        let n = index.fns.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut direct_locks: Vec<Vec<LockAcq>> = vec![Vec::new(); n];
        let mut direct_io: Vec<bool> = vec![false; n];
        for (fi, info) in index.fns.iter().enumerate() {
            if info.in_test {
                continue;
            }
            let Some(file) = files.get(&info.path) else {
                continue;
            };
            let Some(start) = info.body_start else {
                continue;
            };
            for (lineno, line) in body_lines(file, start, info.body_end) {
                let prev = prev_code(file, lineno);
                direct_locks[fi].extend(direct_acquisitions(&info.path, &line.code, prev, lineno));
                if io_needles.iter().any(|needle| line.code.contains(needle)) {
                    direct_io[fi] = true;
                }
                for call in calls_on_line(&line.code) {
                    if call.name == info.name {
                        continue; // recursion adds no new facts
                    }
                    if let Some(ci) = index.resolve(&call.name) {
                        if !callees[fi].contains(&ci) {
                            callees[fi].push(ci);
                        }
                    }
                }
            }
            callees[fi].sort_unstable();
        }
        // Fixpoint: propagate lock classes and IO reachability up the graph.
        let mut reachable_locks: Vec<BTreeSet<String>> = direct_locks
            .iter()
            .map(|locks| locks.iter().map(|l| l.class.clone()).collect())
            .collect();
        let mut reachable_io = direct_io;
        loop {
            let mut changed = false;
            for fi in 0..n {
                for ci in callees[fi].clone() {
                    if reachable_io[ci] && !reachable_io[fi] {
                        reachable_io[fi] = true;
                        changed = true;
                    }
                    let extra: Vec<String> = reachable_locks[ci]
                        .iter()
                        .filter(|c| !reachable_locks[fi].contains(*c))
                        .cloned()
                        .collect();
                    for c in extra {
                        reachable_locks[fi].insert(c);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CallGraph {
            callees,
            direct_locks,
            reachable_locks,
            reachable_io,
        }
    }
}

/// The stripped code of the line above `lineno`, or empty at the top.
pub fn prev_code(file: &SourceFile, lineno: usize) -> &str {
    if lineno >= 2 {
        file.lines[lineno - 2].code.as_str()
    } else {
        ""
    }
}

/// Iterates `(1-based line number, line)` over a body span, skipping test
/// lines (a prod fn cannot contain them, but the guard is free).
pub fn body_lines(
    file: &SourceFile,
    start: usize,
    end: usize,
) -> impl Iterator<Item = (usize, &SourceLine)> {
    file.lines
        .iter()
        .enumerate()
        .skip(start.saturating_sub(1))
        .take_while(move |(i, _)| *i < end)
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.in_test)
}

/// One edge of the lock-acquisition graph: `held` was live when `acquired`
/// was taken, recorded at its first site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock class held at the acquisition.
    pub held: String,
    /// Lock class acquired while `held` was live.
    pub acquired: String,
    /// File of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

/// The workspace lock-acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every lock class seen anywhere (graph nodes).
    pub classes: BTreeSet<String>,
    /// Ordered edges, keyed `(held, acquired)`, first site wins.
    pub edges: BTreeMap<(String, String), LockEdge>,
}

impl LockGraph {
    /// Records an edge (first site wins, so reports are deterministic).
    pub fn add_edge(&mut self, held: &str, acquired: &str, path: &str, line: usize) {
        self.classes.insert(held.to_string());
        self.classes.insert(acquired.to_string());
        let key = (held.to_string(), acquired.to_string());
        self.edges.entry(key).or_insert_with(|| LockEdge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            path: path.to_string(),
            line,
        });
    }

    /// Records a node with no ordering constraint yet.
    pub fn add_class(&mut self, class: &str) {
        self.classes.insert(class.to_string());
    }

    /// Edges that participate in a cycle: `held → acquired` where `held` is
    /// reachable back from `acquired` (self-loops included).
    pub fn cyclic_edges(&self) -> Vec<&LockEdge> {
        let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (held, acquired) in self.edges.keys() {
            adjacency
                .entry(held.as_str())
                .or_default()
                .insert(acquired.as_str());
        }
        let mut cyclic = Vec::new();
        for edge in self.edges.values() {
            if edge.held == edge.acquired || reaches(&adjacency, &edge.acquired, &edge.held) {
                cyclic.push(edge);
            }
        }
        cyclic
    }
}

/// DFS reachability over the class adjacency map.
fn reaches(adjacency: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = adjacency.get(node) {
            stack.extend(next.iter().copied().filter(|n| !seen.contains(*n)));
        }
    }
    false
}
