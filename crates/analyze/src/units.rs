//! Unit-taint analysis: classify `f64` values into physical units from
//! declaration-site naming (CDAS accounting lives entirely in bare `f64`s)
//! and flag cross-unit mixing.
//!
//! Units are assigned lexically — `reclaimed_minutes` is minutes, `hit_cost`
//! is dollars, `required_accuracy` is a probability — gated by the symbol
//! index's struct-field table where type information exists. Taints
//! propagate through `let` bindings within a function and through call
//! arguments via unique-name resolution. Only additive arithmetic (`+`, `-`,
//! `+=`, `-=`) and comparisons are flagged: multiplication and division
//! legitimately change units, and any operand more complex than one
//! identifier chain or literal is skipped rather than guessed at.

use std::collections::BTreeMap;

/// A physical unit the accounting code traffics in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Simulated time (the clock, `*_at` stamps, makespans, latencies).
    Minutes,
    /// Host wall-clock measurements (`wall_seconds`).
    Seconds,
    /// Money (costs, fees, budgets, charges, rewards).
    Dollars,
    /// A probability or fraction in `[0, 1]`.
    Probability,
    /// Log-space quantities (log-odds, log-probabilities, `ln_*` terms).
    LogOdds,
    /// Dimensionless tallies (workers, answers, samples, ticks).
    Count,
}

impl Unit {
    /// Human-readable name used in violation messages.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Minutes => "minutes",
            Unit::Seconds => "seconds",
            Unit::Dollars => "dollars",
            Unit::Probability => "probability",
            Unit::LogOdds => "log-odds",
            Unit::Count => "count",
        }
    }
}

/// Classifies an identifier by its name alone. `None` means unit-neutral.
pub fn classify_name(name: &str) -> Option<Unit> {
    let tokens: Vec<&str> = name.split('_').filter(|t| !t.is_empty()).collect();
    let has = |t: &str| tokens.contains(&t);
    // Rates (`questions_per_minute`) are neither of their constituent units.
    if has("per") {
        return None;
    }
    if has("logit") || has("odds") {
        return Some(Unit::LogOdds);
    }
    if tokens.len() > 1 && (tokens[0] == "ln" || tokens[0] == "log") {
        return Some(Unit::LogOdds);
    }
    // Counts win over value units: `charge_count` tallies charges, it does
    // not hold dollars. Plural `charges` names a record container here, so it
    // is deliberately absent from the dollars list below.
    if has("count")
        || has("workers")
        || has("answers")
        || has("questions")
        || has("samples")
        || has("votes")
        || has("ticks")
        || has("hits")
        || name == "n"
        || name == "k"
        || name == "len"
    {
        return Some(Unit::Count);
    }
    if has("accuracy") || has("probability") || has("prob") || has("confidence") || has("ratio") {
        return Some(Unit::Probability);
    }
    if name == "p" || name == "mu" {
        return Some(Unit::Probability);
    }
    if has("cost")
        || has("fee")
        || has("budget")
        || has("price")
        || has("dollars")
        || has("spent")
        || has("charge")
        || has("charged")
        || has("reward")
        || has("savings")
        || has("saving")
        || has("amount")
    {
        return Some(Unit::Dollars);
    }
    if has("seconds") || has("secs") {
        return Some(Unit::Seconds);
    }
    if has("minutes")
        || has("minute")
        || has("makespan")
        || has("latency")
        || has("deadline")
        || tokens.last() == Some(&"at")
        || name == "now"
        || name.starts_with("time_to")
    {
        return Some(Unit::Minutes);
    }
    None
}

/// Classifies a parameter: only `f64`-typed (or `Option<f64>`) parameters
/// carry units; everything else is neutral regardless of name.
pub fn classify_param(name: &str, ty: &str) -> Option<Unit> {
    if !ty.contains("f64") || ty.contains('&') {
        return None;
    }
    classify_name(name)
}

/// One lexical token of a stripped code line.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal with its parsed value (`None` when unparseable).
    Num(Option<f64>),
    /// An operator or punctuation run (`+`, `+=`, `::`, `..=`, ...).
    Op(String),
    /// Open bracket: `(`, `[`, `{`.
    Open(char),
    /// Close bracket: `)`, `]`, `}`.
    Close(char),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes one stripped code line.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            // A fractional part — but not a `..` range, method call, or field.
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
            }
            // Exponent.
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut j = i + 1;
                if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                    j += 1;
                }
                if j < chars.len() && chars[j].is_ascii_digit() {
                    i = j;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            // Type suffix (`1.0f64`, `4u32`).
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().filter(|&&c| c != '_').collect();
            let cleaned = text.trim_end_matches("f64").trim_end_matches("f32");
            out.push(Tok::Num(cleaned.parse::<f64>().ok()));
            continue;
        }
        if is_ident(c) {
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            out.push(Tok::Ident(chars[start..i].iter().collect()));
            continue;
        }
        match c {
            '(' | '[' | '{' => {
                out.push(Tok::Open(c));
                i += 1;
            }
            ')' | ']' | '}' => {
                out.push(Tok::Close(c));
                i += 1;
            }
            _ => {
                // Greedily take multi-char operators.
                const MULTI: &[&str] = &[
                    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "==", "!=", "<=", ">=",
                    "+=", "-=", "*=", "/=", "%=", "&&", "||", "<<", ">>", "&=", "|=", "^=",
                ];
                let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
                let mut matched = None;
                for m in MULTI {
                    if rest.starts_with(m) {
                        matched = Some(*m);
                        break;
                    }
                }
                match matched {
                    Some(m) => {
                        out.push(Tok::Op(m.to_string()));
                        i += m.len();
                    }
                    None => {
                        out.push(Tok::Op(c.to_string()));
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// A parsed simple operand: one identifier chain (fields, calls, indexes) or
/// one numeric literal, optionally suffixed `as f64`.
#[derive(Debug, Clone)]
pub struct Operand {
    /// Last named segment of the chain (classification key); empty for
    /// literals.
    pub last: String,
    /// First segment (for local-variable lookups on single-segment chains).
    pub first: String,
    /// Number of named segments.
    pub segments: usize,
    /// Whether the final segment was a call (`total_cost()`).
    pub is_call: bool,
    /// Whether the chain contains any field access or index.
    pub literal: Option<f64>,
    /// Token index one past the operand.
    pub end: usize,
}

/// Tries to parse a simple operand starting at token `at`. Returns `None`
/// when the tokens there do not form one (operators, brackets, ...).
pub fn parse_operand(toks: &[Tok], at: usize) -> Option<Operand> {
    let mut i = at;
    match toks.get(i)? {
        Tok::Num(v) => {
            let mut end = i + 1;
            // `1.0 as f64` — pointless but legal.
            if matches!(toks.get(end), Some(Tok::Ident(a)) if a == "as") {
                end += 2;
            }
            return Some(Operand {
                last: String::new(),
                first: String::new(),
                segments: 0,
                is_call: false,
                literal: *v,
                end,
            });
        }
        Tok::Ident(_) => {}
        _ => return None,
    }
    let mut last = String::new();
    let mut first = String::new();
    let mut segments = 0usize;
    let mut is_call = false;
    while let Some(Tok::Ident(name)) = toks.get(i) {
        if name == "as" {
            // `x as f64` — consume the cast and stop.
            i += 2;
            break;
        }
        last = name.clone();
        if segments == 0 {
            first = name.clone();
        }
        segments += 1;
        is_call = false;
        i += 1;
        // Optional call arguments and/or index brackets.
        while let Some(Tok::Open(open @ ('(' | '['))) = toks.get(i) {
            if *open == '(' {
                is_call = true;
            }
            let mut depth = 0i32;
            let mut closed = false;
            while let Some(t) = toks.get(i) {
                match t {
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => {
                        depth -= 1;
                        if depth <= 0 {
                            i += 1;
                            closed = true;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            if !closed {
                // The bracket run continues on the next line — too
                // little context to judge this operand.
                return None;
            }
        }
        // Chain continues through `.` or `::`.
        match toks.get(i) {
            Some(Tok::Op(op)) if op == "." || op == "::" => {
                i += 1;
                continue;
            }
            _ => break,
        }
    }
    if segments == 0 {
        return None;
    }
    // `x as f64` after a chain.
    if matches!(toks.get(i), Some(Tok::Ident(a)) if a == "as") {
        i += 2;
    }
    Some(Operand {
        last,
        first,
        segments,
        is_call,
        literal: None,
        end: i,
    })
}

/// The operand-level unit of one parsed operand, given the per-function
/// local table and the workspace field-type gate.
pub fn operand_unit(
    op: &Operand,
    locals: &BTreeMap<String, Unit>,
    is_f64_field: impl Fn(&str) -> bool,
) -> Option<Unit> {
    if op.literal.is_some() {
        return None;
    }
    if op.segments == 1 && !op.is_call {
        if let Some(&u) = locals.get(&op.last) {
            return Some(u);
        }
        return classify_name(&op.last);
    }
    if op.is_call {
        // Calls classify by the called name: `total_cost()` is dollars,
        // `max(..)`/`ln()` are neutral.
        return classify_name(&op.last);
    }
    // Field access: gated on some struct declaring the field as f64.
    if is_f64_field(&op.last) {
        return classify_name(&op.last);
    }
    None
}
