//! The grandfathering baseline: a committed, sorted inventory of known
//! violations that `--check` tolerates while new code stays clean.
//!
//! Each entry is one line, `rule<TAB>path<TAB>count<TAB>fingerprint`, where
//! the fingerprint is the violating line's normalized text. Keying on content
//! rather than line numbers means unrelated edits that move code around do
//! not invalidate the baseline, while *any* new violation — even a copy of a
//! grandfathered one in a new file — is reported. CI separately asserts the
//! file only ever shrinks.

use std::collections::BTreeMap;

use crate::Violation;

/// One baseline key: (rule, path, fingerprint).
pub type Key = (String, String, String);

/// Parsed baseline: occurrence counts per key.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Count of grandfathered occurrences for each key.
    pub entries: BTreeMap<Key, usize>,
}

/// A problem found while parsing a baseline file.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number of the malformed entry.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.detail)
    }
}

impl Baseline {
    /// Parses the baseline text format. Lines starting with `#` and blank
    /// lines are ignored.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (Some(rule), Some(path), Some(count), Some(fp)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(ParseError {
                    line: lineno,
                    detail: "expected rule<TAB>path<TAB>count<TAB>fingerprint".to_string(),
                });
            };
            let count: usize = count.parse().map_err(|_| ParseError {
                line: lineno,
                detail: format!("count `{count}` is not a number"),
            })?;
            if count == 0 {
                return Err(ParseError {
                    line: lineno,
                    detail: "zero-count entries must be deleted, not kept".to_string(),
                });
            }
            let key = (rule.to_string(), path.to_string(), fp.to_string());
            if entries.insert(key, count).is_some() {
                return Err(ParseError {
                    line: lineno,
                    detail: "duplicate entry".to_string(),
                });
            }
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline that grandfathers exactly the given violations.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut entries: BTreeMap<Key, usize> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.rule.to_string(), v.path.clone(), v.fingerprint.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Renders the canonical, sorted text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# cdas-analyze baseline: grandfathered violations.\n");
        out.push_str("# Format: rule<TAB>path<TAB>count<TAB>line-fingerprint (sorted).\n");
        out.push_str("# Regenerate with `cargo run -p cdas-analyze -- --write-baseline`.\n");
        out.push_str("# CI enforces that this file only ever shrinks.\n");
        for ((rule, path, fp), count) in &self.entries {
            out.push_str(&format!("{rule}\t{path}\t{count}\t{fp}\n"));
        }
        out
    }

    /// Total grandfathered occurrence count.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }
}

/// Outcome of checking a scan against a baseline.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Violations not covered by the baseline — new debt; fails the check.
    pub new: Vec<Violation>,
    /// Baseline entries whose violations no longer exist (or exist fewer
    /// times); the file must be shrunk — also fails the check so the
    /// inventory stays exact.
    pub stale: Vec<(Key, usize, usize)>,
    /// Occurrences matched by the baseline.
    pub grandfathered: usize,
}

impl CheckOutcome {
    /// True when the scan matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Compares `violations` against `baseline`, classifying each occurrence.
pub fn check(violations: &[Violation], baseline: &Baseline) -> CheckOutcome {
    let actual = Baseline::from_violations(violations);
    let mut outcome = CheckOutcome::default();
    // Surplus occurrences per key (beyond the baselined count) are new.
    let mut budget: BTreeMap<Key, usize> = BTreeMap::new();
    for (key, &count) in &actual.entries {
        let allowed = baseline.entries.get(key).copied().unwrap_or(0);
        budget.insert(key.clone(), allowed);
        outcome.grandfathered += count.min(allowed);
        if count < allowed {
            outcome.stale.push((key.clone(), allowed, count));
        }
    }
    for (key, &allowed) in &baseline.entries {
        if !actual.entries.contains_key(key) {
            outcome.stale.push((key.clone(), allowed, 0));
        }
    }
    for v in violations {
        let key = (v.rule.to_string(), v.path.clone(), v.fingerprint.clone());
        match budget.get_mut(&key) {
            Some(remaining) if *remaining > 0 => *remaining -= 1,
            _ => outcome.new.push(v.clone()),
        }
    }
    outcome.stale.sort();
    outcome
}
