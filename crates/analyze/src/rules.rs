//! The rule set. File-local rules: determinism, panic-freedom, codec
//! exhaustiveness, lock discipline, must-use coverage, and `cdas-allow`
//! syntax validation. Cross-file rules (pass 2, over the symbol index and
//! call graph): lock-order deadlock detection, unit-taint analysis, and
//! publish/collect + journal protocol ordering.
//!
//! Every rule emits [`Violation`]s keyed by a *content fingerprint* (the
//! normalized line text) rather than a line number, so the committed
//! baseline survives unrelated edits that shift code up or down a file.

use std::collections::BTreeMap;

use crate::callgraph::{
    calls_on_line, direct_acquisitions, self_fields_in_args, CallGraph, LockGraph,
};
use crate::index::WorkspaceIndex;
use crate::scan::SourceFile;
use crate::units::{self, Unit};
use crate::{fingerprint, Violation};

/// Names of every rule the analyzer knows, in report order.
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "panic_freedom",
    "codec_exhaustive",
    "lock_discipline",
    "must_use",
    "allow_syntax",
    "lock_order",
    "unit_taint",
    "protocol_order",
];

/// Returns true when `name` is a known rule.
pub fn is_known_rule(name: &str) -> bool {
    RULE_NAMES.contains(&name)
}

/// True when the char is part of a Rust identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `code` at identifier boundaries (the chars immediately
/// before and after the match must not extend an identifier).
fn find_token(code: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        let needle_end = needle.chars().next_back().unwrap_or(' ');
        let after_ok = !is_ident(needle_end) || !is_ident(after);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Rule 1: determinism. Bans wall-clock reads and hash-ordered containers in
/// production code — anything feeding `FleetReport`, `FleetEvent` streams, or
/// the journal must iterate in a stable order.
pub fn determinism(file: &SourceFile, out: &mut Vec<Violation>) {
    const NEEDLES: &[(&str, &str)] = &[
        (
            "Instant::now",
            "wall-clock read; derive time from the simulation clock",
        ),
        (
            "SystemTime::now",
            "wall-clock read; derive time from the simulation clock",
        ),
        (
            "HashMap",
            "hash-ordered container; use BTreeMap so drains are deterministic",
        ),
        (
            "HashSet",
            "hash-ordered container; use BTreeSet so drains are deterministic",
        ),
        (
            "RandomState",
            "hasher-seeded state leaks host entropy into iteration order",
        ),
    ];
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("determinism", lineno) {
            continue;
        }
        for (needle, why) in NEEDLES {
            if find_token(&line.code, needle).is_some() {
                out.push(Violation {
                    rule: "determinism",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}`: {why}"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
    }
}

/// Rule 2: panic-freedom. Bans `unwrap`/`expect`/panicking macros and bare
/// indexing in non-test code; a panic inside a shard thread surfaces only
/// after join, so fallible paths must return `CdasError` instead.
pub fn panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    const CALLS: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("panic_freedom", lineno) {
            continue;
        }
        let code = &line.code;
        for needle in CALLS {
            if code.contains(needle) {
                out.push(Violation {
                    rule: "panic_freedom",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}` can panic; return a typed error instead"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
        for needle in MACROS {
            if find_token(code, needle).is_some() {
                out.push(Violation {
                    rule: "panic_freedom",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}` aborts the shard; return a typed error instead"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
        if let Some(col) = bare_index(code) {
            out.push(Violation {
                rule: "panic_freedom",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "bare indexing at column {} can panic; use `.get()` or a checked slice",
                    col + 1
                ),
                fingerprint: fingerprint(&line.raw),
            });
        }
    }
}

/// Detects `expr[...]` indexing: a `[` immediately preceded (ignoring spaces)
/// by an identifier char, `)`, or `]` — which excludes attributes (`#[...]`),
/// macro brackets (`vec![...]`), type positions (`-> [u8; 4]`), and slice
/// types behind a lifetime (`&'a [u8]`).
fn bare_index(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = chars[j - 1];
        if prev == ')' || prev == ']' {
            return Some(i);
        }
        if is_ident(prev) {
            // Walk back over the identifier; a leading `'` means it was a
            // lifetime (`&'a [u8]`), not an indexable expression.
            let mut k = j;
            while k > 0 && is_ident(chars[k - 1]) {
                k -= 1;
            }
            if k > 0 && chars[k - 1] == '\'' {
                continue;
            }
            // A keyword before `[` is a type or pattern position (`&mut
            // [u8]`, `let [first, ..] = arr`), not an indexable expression.
            let word: String = chars[k..j].iter().collect();
            const KEYWORDS: &[&str] = &[
                "let", "mut", "ref", "dyn", "in", "as", "box", "return", "break", "match", "impl",
                "where", "move", "static", "const", "unsafe", "else",
            ];
            if KEYWORDS.contains(&word.as_str()) {
                continue;
            }
            return Some(i);
        }
    }
    None
}

/// Configuration for one codec-exhaustiveness check: an enum whose
/// hand-written `BinCodec` impl and round-trip tests must cover every variant.
#[derive(Debug, Clone)]
pub struct CodecSpec {
    /// The enum's name, e.g. `JournalRecord`.
    pub enum_name: &'static str,
    /// File (relative to the root) declaring the enum.
    pub decl_path: &'static str,
    /// File containing the `impl BinCodec for <enum>` block.
    pub codec_path: &'static str,
    /// Files whose test regions must mention every variant (round-trip tests).
    pub test_paths: &'static [&'static str],
}

/// Rule 3: codec exhaustiveness. Parses the enum's variants and verifies each
/// one appears in the encode arm, the decode arm, and a round-trip test.
pub fn codec_exhaustive(
    spec: &CodecSpec,
    files: &std::collections::BTreeMap<String, SourceFile>,
    out: &mut Vec<Violation>,
) {
    let Some(decl) = files.get(spec.decl_path) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.decl_path.to_string(),
            line: 1,
            message: format!(
                "declaring file for enum `{}` not found in scan set",
                spec.enum_name
            ),
            fingerprint: fingerprint(&format!("missing decl {}", spec.enum_name)),
        });
        return;
    };
    let Some((decl_line, variants)) = enum_variants(decl, spec.enum_name) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.decl_path.to_string(),
            line: 1,
            message: format!("enum `{}` not found in {}", spec.enum_name, spec.decl_path),
            fingerprint: fingerprint(&format!("missing enum {}", spec.enum_name)),
        });
        return;
    };
    let Some(codec) = files.get(spec.codec_path) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.codec_path.to_string(),
            line: 1,
            message: format!(
                "codec file for enum `{}` not found in scan set",
                spec.enum_name
            ),
            fingerprint: fingerprint(&format!("missing codec {}", spec.enum_name)),
        });
        return;
    };
    let (encode, decode) = codec_fn_bodies(codec, spec.enum_name);
    for variant in &variants {
        let qualified = format!("{}::{}", spec.enum_name, variant);
        let in_encode = encode.iter().any(|l| find_token(l, &qualified).is_some());
        let in_decode = decode.iter().any(|l| find_token(l, &qualified).is_some());
        let in_test = spec.test_paths.iter().any(|tp| {
            files.get(*tp).is_some_and(|tf| {
                tf.numbered()
                    .any(|(_, l)| l.in_test && find_token(&l.code, &qualified).is_some())
            })
        });
        let mut missing = Vec::new();
        if !in_encode {
            missing.push("encode arm");
        }
        if !in_decode {
            missing.push("decode arm");
        }
        if !in_test {
            missing.push("round-trip test mention");
        }
        if !missing.is_empty() {
            out.push(Violation {
                rule: "codec_exhaustive",
                path: spec.decl_path.to_string(),
                line: decl_line,
                message: format!("variant `{qualified}` is missing: {}", missing.join(", ")),
                fingerprint: fingerprint(&format!("{qualified} missing {}", missing.join(","))),
            });
        }
    }
}

/// Finds `enum <name>` and returns its 1-based declaration line plus the
/// variant names parsed from the depth-1 lines of its body.
fn enum_variants(file: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    let needle = format!("enum {name}");
    let mut decl_line = None;
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        if find_token(&line.code, &needle).is_some() {
            decl_line = Some(lineno);
            break;
        }
    }
    let start = decl_line?;
    let base_depth = file.lines[start - 1].depth_start;
    let mut variants = Vec::new();
    for (lineno, line) in file.numbered().skip(start - 1) {
        // Variant names sit at depth base+1; the enum ends when depth returns
        // to base after the opening brace.
        if lineno > start && line.depth_end <= base_depth && line.code.contains('}') {
            break;
        }
        if line.depth_start != base_depth + 1 {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(first) = trimmed.chars().next() else {
            continue;
        };
        if !first.is_ascii_uppercase() {
            continue;
        }
        let ident: String = trimmed.chars().take_while(|&c| is_ident(c)).collect();
        if !ident.is_empty() {
            variants.push(ident);
        }
    }
    Some((start, variants))
}

/// Extracts the lines of `fn encode` and `fn decode` inside
/// `impl BinCodec for <name>`.
fn codec_fn_bodies(file: &SourceFile, name: &str) -> (Vec<String>, Vec<String>) {
    let impl_needle = format!("impl BinCodec for {name}");
    let mut encode = Vec::new();
    let mut decode = Vec::new();
    let mut in_impl = false;
    let mut impl_depth = 0usize;
    let mut current: Option<&mut Vec<String>> = None;
    let mut fn_depth = 0usize;
    for line in &file.lines {
        if !in_impl {
            if line.code.contains(&impl_needle) {
                in_impl = true;
                impl_depth = line.depth_start;
            }
            continue;
        }
        if line.depth_end <= impl_depth && line.code.contains('}') && current.is_none() {
            break;
        }
        if current.is_none() {
            if find_token(&line.code, "fn encode").is_some() {
                current = Some(&mut encode);
                fn_depth = line.depth_start;
            } else if find_token(&line.code, "fn decode").is_some() {
                current = Some(&mut decode);
                fn_depth = line.depth_start;
            }
        }
        if let Some(body) = current.as_mut() {
            body.push(line.code.clone());
            if line.depth_end <= fn_depth && line.code.contains('}') {
                current = None;
            }
        }
    }
    (encode, decode)
}

/// Rule 4: lock discipline. Flags a `Mutex`/`RwLock` guard bound on one line
/// and still live when a later line calls into platform or journal I/O —
/// holding a stripe lock across `publish`/`poll`/`append`/`sync` serializes
/// shards and risks deadlock with the journal's own locking.
pub fn lock_discipline(file: &SourceFile, io_needles: &[&str], out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let Some(guard) = guard_binding(&line.code) else {
            continue;
        };
        let scope_depth = line.depth_start;
        for (later_no, later) in file.numbered().skip(lineno) {
            if later.depth_end < scope_depth {
                break;
            }
            let code = &later.code;
            if code.contains(&format!("drop({guard})")) {
                break;
            }
            if later.in_test {
                continue;
            }
            for needle in io_needles {
                let Some(at) = code.find(needle) else {
                    continue;
                };
                // Calls *through the guard itself* are the point of holding
                // it (e.g. `journal.append(..)` on the locked journal).
                if receiver_root(code, at) == guard {
                    continue;
                }
                if file.is_allowed("lock_discipline", later_no)
                    || file.is_allowed("lock_discipline", lineno)
                {
                    continue;
                }
                out.push(Violation {
                    rule: "lock_discipline",
                    path: file.path.clone(),
                    line: later_no,
                    message: format!(
                        "guard `{guard}` (line {lineno}) held across I/O call `{}`",
                        needle.trim_end_matches('(')
                    ),
                    fingerprint: fingerprint(&later.raw),
                });
            }
        }
    }
}

/// Parses `let [mut] <name> = <expr>.lock()/.read()/.write()` and returns the
/// guard name.
fn guard_binding(code: &str) -> Option<String> {
    let has_guard_call = [".lock()", ".read()", ".write()"]
        .iter()
        .any(|n| code.contains(n));
    if !has_guard_call {
        return None;
    }
    let let_pos = find_token(code, "let")?;
    let rest = code[let_pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// Returns the root identifier of the receiver chain ending at `at`, e.g.
/// `state` for `state.journal.append(`.
fn receiver_root(code: &str, at: usize) -> String {
    let head = &code[..at];
    let chain: String = head
        .chars()
        .rev()
        .take_while(|&c| is_ident(c) || c == '.' || c == ':')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    chain
        .split(['.', ':'])
        .find(|s| !s.is_empty())
        .unwrap_or("")
        .to_string()
}

/// Rule 5: must-use coverage. Every type in the configured list must carry
/// `#[must_use]` on its declaration, and `pub fn`s returning one wrapped in a
/// non-`Result` container need a fn-level `#[must_use]` (`Result` is already
/// `#[must_use]`, and doubling the attribute trips `clippy::double_must_use`).
pub fn must_use(file: &SourceFile, types: &[&str], out: &mut Vec<Violation>) {
    for ty in types {
        check_decl_must_use(file, ty, out);
    }
    check_fn_must_use(file, types, out);
}

fn check_decl_must_use(file: &SourceFile, ty: &str, out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let is_decl = find_token(&line.code, &format!("struct {ty}")).is_some()
            || find_token(&line.code, &format!("enum {ty}")).is_some();
        if !is_decl {
            continue;
        }
        if file.is_allowed("must_use", lineno) {
            return;
        }
        // Walk the contiguous attribute/doc lines above the declaration.
        let mut has = false;
        let mut i = lineno - 1;
        while i > 0 {
            let above = &file.lines[i - 1];
            let t = above.raw.trim_start();
            if t.starts_with("#[") || t.starts_with("///") || t.starts_with("#![") {
                if t.starts_with("#[must_use") {
                    has = true;
                }
                i -= 1;
            } else {
                break;
            }
        }
        if !has {
            out.push(Violation {
                rule: "must_use",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "`{ty}` must carry `#[must_use]`; discarding one loses accounting"
                ),
                fingerprint: fingerprint(&line.raw),
            });
        }
        return;
    }
}

fn check_fn_must_use(file: &SourceFile, types: &[&str], out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("must_use", lineno) {
            continue;
        }
        let code = &line.code;
        let Some(fn_pos) = find_token(code, "fn") else {
            continue;
        };
        if find_token(code, "pub").is_none() {
            continue;
        }
        // Join the signature across lines until the body opens or the item
        // ends (trait method without a body).
        let mut sig = code[fn_pos..].to_string();
        let mut j = lineno;
        while !sig.contains('{') && !sig.contains(';') && j < file.lines.len() && j < lineno + 8 {
            sig.push(' ');
            sig.push_str(&file.lines[j].code);
            j += 1;
        }
        let Some(arrow) = sig.find("->") else {
            continue;
        };
        let ret = sig[arrow + 2..]
            .split(['{', ';'])
            .next()
            .unwrap_or("")
            .trim();
        let mentions = types.iter().find(|ty| find_token(ret, ty).is_some());
        let Some(ty) = mentions else {
            continue;
        };
        // `Result<...>` is inherently must_use; a direct return of the listed
        // type is covered by the type-level attribute.
        if find_token(ret, "Result").is_some() {
            continue;
        }
        let direct = ret == *ty || ret.ends_with(&format!("::{ty}"));
        if direct {
            continue;
        }
        // Wrapped in Option/Vec/tuple/...: the fn needs its own attribute.
        let mut has = false;
        let mut i = lineno - 1;
        while i > 0 {
            let t = file.lines[i - 1].raw.trim_start();
            if t.starts_with("#[") || t.starts_with("///") {
                if t.starts_with("#[must_use") {
                    has = true;
                }
                i -= 1;
            } else {
                break;
            }
        }
        if !has {
            out.push(Violation {
                rule: "must_use",
                path: file.path.clone(),
                line: lineno,
                message: format!("pub fn returns `{ret}` wrapping `{ty}` but lacks `#[must_use]`"),
                fingerprint: fingerprint(&line.raw),
            });
        }
    }
}

/// Parses `let [mut] <name> = ...` and returns the binding name, or `None`
/// for tuple/struct patterns and wildcard bindings.
fn let_name(code: &str) -> Option<String> {
    let let_pos = find_token(code, "let")?;
    let rest = code[let_pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() {
        return None;
    }
    Some(name)
}

/// All identifier-boundary positions of `needle` in `code`.
fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident(after) {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// One guard live during the [`lock_order`] walk of a fn body.
struct LiveGuard {
    /// The binding name.
    name: String,
    /// Lock classes acquired on the binding line.
    classes: Vec<String>,
    /// Depth the binding line started at; the guard dies when a later line's
    /// end depth drops below it.
    scope_depth: usize,
    /// 1-based binding line.
    line: usize,
    /// Whether the binding line carried a literal `.lock()`/`.read()`/
    /// `.write()` (those are `lock_discipline`'s territory for direct-I/O
    /// checks; helper-acquired guards are only visible to this rule).
    file_local: bool,
}

/// Rule 7 (pass 2), collection half: walks every fn body tracking live
/// guards, feeds held→acquired edges into the workspace [`LockGraph`], and
/// flags I/O reached *through resolved calls* while a guard is held (the
/// cross-file strengthening of `lock_discipline`, which only sees I/O
/// spelled on the line itself).
pub fn lock_order_collect(
    file: &SourceFile,
    index: &WorkspaceIndex,
    graph: &CallGraph,
    io_needles: &[&str],
    lock_graph: &mut LockGraph,
    out: &mut Vec<Violation>,
) {
    for info in index.fns.iter().filter(|f| f.path == file.path) {
        let (Some(start), false) = (info.body_start, info.in_test) else {
            continue;
        };
        let mut live: Vec<LiveGuard> = Vec::new();
        for (lineno, line) in crate::callgraph::body_lines(file, start, info.body_end) {
            live.retain(|g| line.depth_end >= g.scope_depth);
            let code = &line.code;
            live.retain(|g| !code.contains(&format!("drop({})", g.name)));
            // Everything acquired on this line: direct needles, guard
            // helpers, and locks transitively reachable through plain calls.
            let prev = crate::callgraph::prev_code(file, lineno);
            let mut acquired: Vec<String> = direct_acquisitions(&file.path, code, prev, lineno)
                .into_iter()
                .map(|a| a.class)
                .collect();
            let file_local = !acquired.is_empty();
            let mut guard_call = false;
            for call in calls_on_line(code) {
                if live.iter().any(|g| g.name == call.receiver_root) {
                    // Calls through a held guard are the point of holding it.
                    continue;
                }
                let Some(ci) = index.resolve(&call.name) else {
                    continue;
                };
                let callee = &index.fns[ci];
                if callee.returns_guard() {
                    guard_call = true;
                    // A generic relock helper names its lock at the call
                    // site (`Self::relock(&self.journal)`); helpers with an
                    // internal lock contribute their own classes.
                    let fields = self_fields_in_args(&call.args);
                    if fields.is_empty() {
                        acquired.extend(graph.reachable_locks[ci].iter().cloned());
                    } else {
                        acquired.extend(fields.iter().map(|f| format!("{}:{f}", file.path)));
                    }
                } else {
                    acquired.extend(graph.reachable_locks[ci].iter().cloned());
                    if !live.is_empty()
                        && graph.reachable_io[ci]
                        && !file.is_allowed("lock_order", lineno)
                    {
                        let held = &live[live.len() - 1];
                        out.push(Violation {
                            rule: "lock_order",
                            path: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "guard `{}` (line {}) held across call to `{}`, which performs platform/journal I/O",
                                held.name, held.line, call.name
                            ),
                            fingerprint: fingerprint(&line.raw),
                        });
                    }
                }
            }
            // Direct I/O on the line while a *helper-acquired* guard is held
            // (a needle `lock_discipline` cannot attribute to a guard).
            for needle in io_needles {
                let Some(at) = code.find(needle) else {
                    continue;
                };
                let root = receiver_root(code, at);
                if live.iter().any(|g| g.name == root) {
                    continue;
                }
                if let Some(held) = live.iter().rev().find(|g| !g.file_local) {
                    if !file.is_allowed("lock_order", lineno)
                        && !file.is_allowed("lock_order", held.line)
                    {
                        out.push(Violation {
                            rule: "lock_order",
                            path: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "guard `{}` (line {}) held across I/O call `{}`",
                                held.name,
                                held.line,
                                needle.trim_end_matches('(')
                            ),
                            fingerprint: fingerprint(&line.raw),
                        });
                    }
                }
            }
            acquired.sort();
            acquired.dedup();
            for class in &acquired {
                lock_graph.add_class(class);
                for g in &live {
                    for held in &g.classes {
                        lock_graph.add_edge(held, class, &file.path, lineno);
                    }
                }
            }
            if !acquired.is_empty() && (file_local || guard_call) {
                if let Some(name) = let_name(code) {
                    live.push(LiveGuard {
                        name,
                        classes: acquired,
                        scope_depth: line.depth_start,
                        line: lineno,
                        file_local,
                    });
                }
            }
        }
    }
}

/// Rule 7 (pass 2), reporting half: flags every lock-graph edge that sits on
/// a cycle — two functions acquiring the same pair of lock classes in
/// opposite orders can deadlock under concurrent shards.
pub fn lock_order_cycles(
    lock_graph: &LockGraph,
    files: &std::collections::BTreeMap<String, SourceFile>,
    out: &mut Vec<Violation>,
) {
    for edge in lock_graph.cyclic_edges() {
        let Some(file) = files.get(&edge.path) else {
            continue;
        };
        if file.is_allowed("lock_order", edge.line) {
            continue;
        }
        let raw = file
            .lines
            .get(edge.line - 1)
            .map(|l| l.raw.as_str())
            .unwrap_or("");
        out.push(Violation {
            rule: "lock_order",
            path: edge.path.clone(),
            line: edge.line,
            message: format!(
                "lock-order cycle: `{}` acquired while holding `{}`; another path takes them in the opposite order",
                edge.acquired, edge.held
            ),
            fingerprint: fingerprint(raw),
        });
    }
}

/// Operators whose operands must share a unit.
const UNIT_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];
/// Operators that legitimately change units; an operand adjacent to one is
/// part of a product and is never judged.
const SCALE_OPS: &[&str] = &["*", "/", "%"];

/// Rule 8 (pass 2): unit-taint analysis over `f64` values. See
/// [`crate::units`] for the classification tables and operand grammar.
pub fn unit_taint(file: &SourceFile, index: &WorkspaceIndex, out: &mut Vec<Violation>) {
    for info in index.fns.iter().filter(|f| f.path == file.path) {
        let (Some(start), false) = (info.body_start, info.in_test) else {
            continue;
        };
        let mut locals: BTreeMap<String, Unit> = BTreeMap::new();
        for p in &info.params {
            if let Some(u) = units::classify_param(&p.name, &p.ty) {
                locals.insert(p.name.clone(), u);
            }
        }
        for (lineno, line) in crate::callgraph::body_lines(file, start, info.body_end) {
            if file.is_allowed("unit_taint", lineno) {
                continue;
            }
            let code = &line.code;
            check_call_args(file, info, index, code, lineno, &locals, out);
            let toks = units::tokenize(code);
            // Operands keyed by their end token; earliest start wins so a
            // full chain is preferred over its own tail.
            let mut by_end: BTreeMap<usize, (usize, units::Operand)> = BTreeMap::new();
            for i in 0..toks.len() {
                if let Some(op) = units::parse_operand(&toks, i) {
                    by_end.entry(op.end).or_insert((i, op));
                }
            }
            for (t, tok) in toks.iter().enumerate() {
                let units::Tok::Op(op) = tok else {
                    continue;
                };
                let is_unit_op = UNIT_OPS.contains(&op.as_str());
                let is_assign = op == "=";
                if !is_unit_op && !is_assign && op != ":" {
                    continue;
                }
                let Some((a_start, a)) = by_end.get(&t) else {
                    continue;
                };
                let Some(b) = units::parse_operand(&toks, t + 1) else {
                    continue;
                };
                // Skip anything adjacent to a product: `mins * rate` changes
                // units by design.
                let a_scaled = *a_start > 0
                    && matches!(&toks[a_start - 1], units::Tok::Op(p) if SCALE_OPS.contains(&p.as_str()));
                let b_scaled = matches!(toks.get(b.end), Some(units::Tok::Op(p)) if SCALE_OPS.contains(&p.as_str()));
                if a_scaled || b_scaled {
                    continue;
                }
                let gate = |name: &str| index.is_f64_field(name);
                let ua = units::operand_unit(a, &locals, gate);
                let ub = units::operand_unit(&b, &locals, gate);
                if op == ":" {
                    // Struct-literal field init: `required_accuracy: 1.5,`.
                    if a.segments == 1
                        && !a.is_call
                        && ua == Some(Unit::Probability)
                        && out_of_prob_range(b.literal)
                    {
                        push_unit(
                            file,
                            lineno,
                            line,
                            out,
                            format!(
                                "probability field `{}` initialized with literal outside [0, 1]",
                                a.last
                            ),
                        );
                    }
                    continue;
                }
                if is_unit_op || is_assign {
                    if let (Some(ua), Some(ub)) = (ua, ub) {
                        if ua != ub {
                            let verb = if is_assign { "assigns" } else { "mixes" };
                            push_unit(file, lineno, line, out, format!(
                                "{verb} {} `{}` and {} `{}` (op `{op}`); convert explicitly or rename",
                                ua.name(),
                                display_name(a),
                                ub.name(),
                                display_name(&b)
                            ));
                        }
                    }
                    if ua == Some(Unit::Probability) && out_of_prob_range(b.literal) {
                        push_unit(
                            file,
                            lineno,
                            line,
                            out,
                            format!(
                                "probability `{}` {} literal outside [0, 1]",
                                display_name(a),
                                if is_assign {
                                    "assigned"
                                } else {
                                    "compared against"
                                }
                            ),
                        );
                    }
                    if ub == Some(Unit::Probability) && out_of_prob_range(a.literal) {
                        push_unit(
                            file,
                            lineno,
                            line,
                            out,
                            format!(
                                "literal outside [0, 1] compared against probability `{}`",
                                display_name(&b)
                            ),
                        );
                    }
                }
                // Taint propagation: `let elapsed = reclaimed_minutes();`
                if is_assign && a.segments == 1 && !a.is_call {
                    if let Some(ub) = ub {
                        if units::classify_name(&a.last).is_none() {
                            locals.entry(a.last.clone()).or_insert(ub);
                        }
                    }
                }
            }
        }
    }
}

/// Human-readable operand name for messages.
fn display_name(op: &units::Operand) -> String {
    if let Some(v) = op.literal {
        return format!("{v}");
    }
    if op.is_call {
        return format!("{}()", op.last);
    }
    op.last.clone()
}

/// True when a literal value exists and falls outside `[0, 1]`.
fn out_of_prob_range(literal: Option<f64>) -> bool {
    literal.is_some_and(|v| !(0.0..=1.0).contains(&v))
}

/// Emits one `unit_taint` violation.
fn push_unit(
    file: &SourceFile,
    lineno: usize,
    line: &crate::scan::SourceLine,
    out: &mut Vec<Violation>,
    message: String,
) {
    out.push(Violation {
        rule: "unit_taint",
        path: file.path.clone(),
        line: lineno,
        message,
        fingerprint: fingerprint(&line.raw),
    });
}

/// Checks simple call arguments against the units of the callee's `f64`
/// parameters (unique-name resolution only).
fn check_call_args(
    file: &SourceFile,
    caller: &crate::index::FnInfo,
    index: &WorkspaceIndex,
    code: &str,
    lineno: usize,
    locals: &BTreeMap<String, Unit>,
    out: &mut Vec<Violation>,
) {
    for call in calls_on_line(code) {
        if call.name == caller.name {
            continue;
        }
        let Some(ci) = index.resolve(&call.name) else {
            continue;
        };
        let callee = &index.fns[ci];
        if !callee.params.iter().any(|p| p.ty.contains("f64")) {
            continue;
        }
        let mut pieces = split_args(&call.args);
        if !call.complete && !pieces.is_empty() {
            // The call continues on the next line; the last piece may be cut
            // mid-argument.
            pieces.pop();
        }
        for (piece, param) in pieces.iter().zip(&callee.params) {
            let Some(pu) = units::classify_param(&param.name, &param.ty) else {
                continue;
            };
            let toks = units::tokenize(piece.trim());
            let Some(operand) = units::parse_operand(&toks, 0) else {
                continue;
            };
            if operand.end != toks.len() {
                continue; // not a single simple operand
            }
            if pu == Unit::Probability && out_of_prob_range(operand.literal) {
                out.push(Violation {
                    rule: "unit_taint",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "literal outside [0, 1] passed to `{}` parameter `{}` (probability)",
                        call.name, param.name
                    ),
                    fingerprint: fingerprint(code),
                });
                continue;
            }
            let au = units::operand_unit(&operand, locals, |n| index.is_f64_field(n));
            if let Some(au) = au {
                if au != pu {
                    out.push(Violation {
                        rule: "unit_taint",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "{} `{}` passed to `{}` parameter `{}` ({})",
                            au.name(),
                            display_name(&operand),
                            call.name,
                            param.name,
                            pu.name()
                        ),
                        fingerprint: fingerprint(code),
                    });
                }
            }
        }
    }
}

/// Splits an argument list at top-level commas.
fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(args[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(args[start..].to_string());
    out
}

/// Configuration for the [`protocol_order`] rule: the publish/collect call
/// families, the ticket type they hand off, and the journal paths whose
/// `append` ordering is checked.
#[derive(Debug, Clone, Default)]
pub struct ProtocolSpec {
    /// Calls that mint a ticket (`publish_batch` family).
    pub publish_calls: Vec<&'static str>,
    /// Calls that consume one (`collect_batch` family).
    pub collect_calls: Vec<&'static str>,
    /// The ticket type's bare name (empty disables the ticket half).
    pub ticket_type: &'static str,
    /// Path substrings of files whose journal `append` ordering is checked.
    pub journal_paths: Vec<&'static str>,
}

/// Rule 9 (pass 2): protocol ordering. Half one: every ticket minted by a
/// publish-family call must be consumed (forwarded, destructured, or
/// collected); an explicit `drop` needs a `cdas-allow(protocol_order)`.
/// Half two: inside journal/recovery files, a `.append(` recording an event
/// must precede the same-block state mutations it records — mutate-then-log
/// loses the mutation if the append fails.
pub fn protocol_order(
    file: &SourceFile,
    spec: &ProtocolSpec,
    index: &WorkspaceIndex,
    out: &mut Vec<Violation>,
) {
    if !spec.ticket_type.is_empty() {
        protocol_tickets(file, spec, index, out);
    }
    if spec.journal_paths.iter().any(|p| file.path.contains(p)) {
        protocol_journal(file, index, out);
    }
}

/// The ticket half of [`protocol_order`].
fn protocol_tickets(
    file: &SourceFile,
    spec: &ProtocolSpec,
    index: &WorkspaceIndex,
    out: &mut Vec<Violation>,
) {
    for info in index.fns.iter().filter(|f| f.path == file.path) {
        let (Some(start), false) = (info.body_start, info.in_test) else {
            continue;
        };
        // Tickets taken by value as parameters are tracked from the top.
        let mut tracked: Vec<(String, usize, usize)> = Vec::new(); // (name, report line, scan-from line)
        for p in &info.params {
            if p.ty == spec.ticket_type {
                tracked.push((p.name.clone(), info.decl_line, start));
            }
        }
        for (lineno, line) in crate::callgraph::body_lines(file, start, info.body_end) {
            let code = &line.code;
            if find_token(code, "fn").is_some() {
                continue; // decl lines mention the family's own names
            }
            if !spec
                .publish_calls
                .iter()
                .any(|pc| find_token(code, pc).is_some())
            {
                continue;
            }
            // Find the `let` of the statement (it may sit a few lines up for
            // a rustfmt-broken method chain).
            let mut bind = None;
            let mut k = lineno;
            loop {
                let kcode = &file.lines[k - 1].code;
                if find_token(kcode, "let").is_some() {
                    bind = Some(k);
                    break;
                }
                if k <= start || k + 6 < lineno {
                    break;
                }
                let above = file.lines[k - 2].code.trim_end();
                if above.ends_with(';') || above.ends_with('{') || above.ends_with('}') {
                    break;
                }
                k -= 1;
            }
            let Some(bind_line) = bind else {
                continue; // returned or passed straight through; must_use covers discards
            };
            let Some(name) = let_name(&file.lines[bind_line - 1].code) else {
                continue;
            };
            if name == "_" || name.starts_with('_') {
                if !file.is_allowed("protocol_order", bind_line) {
                    out.push(Violation {
                        rule: "protocol_order",
                        path: file.path.clone(),
                        line: bind_line,
                        message: format!(
                            "ticket bound to `{name}` is silently discarded; collect it or drop it under cdas-allow(protocol_order)"
                        ),
                        fingerprint: fingerprint(&file.lines[bind_line - 1].raw),
                    });
                }
                continue;
            }
            tracked.push((name, bind_line, lineno + 1));
        }
        for (name, report_line, scan_from) in tracked {
            if file.is_allowed("protocol_order", report_line) {
                continue;
            }
            let mut consumed = false;
            let mut drop_violation = false;
            'scan: for (lineno, line) in
                crate::callgraph::body_lines(file, scan_from, info.body_end)
            {
                let code = &line.code;
                for at in token_positions(code, &name) {
                    let after = code[at + name.len()..].chars().find(|c| !c.is_whitespace());
                    match after {
                        Some(':') => continue, // its own declaration
                        Some('.') => continue, // borrow/field/method access
                        _ => {}
                    }
                    if code[..at].ends_with("drop(") {
                        if file.is_allowed("protocol_order", lineno) {
                            consumed = true;
                        } else {
                            drop_violation = true;
                            out.push(Violation {
                                rule: "protocol_order",
                                path: file.path.clone(),
                                line: lineno,
                                message: format!(
                                    "ticket `{name}` dropped without cdas-allow(protocol_order); a dropped ticket is a published batch nobody collects"
                                ),
                                fingerprint: fingerprint(&line.raw),
                            });
                        }
                        break 'scan;
                    }
                    // Any other whole-value use consumes it: forwarded to a
                    // collect-family call, destructured, stored, or returned.
                    consumed = true;
                    break 'scan;
                }
            }
            if !consumed && !drop_violation {
                out.push(Violation {
                    rule: "protocol_order",
                    path: file.path.clone(),
                    line: report_line,
                    message: format!(
                        "ticket `{name}` never reaches a collect_batch-family call; forward it or drop it under cdas-allow(protocol_order)"
                    ),
                    fingerprint: fingerprint(&file.lines[report_line - 1].raw),
                });
            }
        }
    }
}

/// The journal half of [`protocol_order`]: walk back from each `.append(`
/// through the same block; a preceding mutation of the same receiver means
/// the state changed before the record that justifies it was durable.
fn protocol_journal(file: &SourceFile, index: &WorkspaceIndex, out: &mut Vec<Violation>) {
    const MUTATORS: &[&str] = &[".push(", ".insert(", ".extend("];
    for info in index.fns.iter().filter(|f| f.path == file.path) {
        let (Some(start), false) = (info.body_start, info.in_test) else {
            continue;
        };
        for (lineno, line) in crate::callgraph::body_lines(file, start, info.body_end) {
            let code = &line.code;
            let Some(at) = code.find(".append(") else {
                continue;
            };
            let root = receiver_root(code, at);
            if root.is_empty() {
                continue;
            }
            let depth = line.depth_start;
            let mut j = lineno;
            while j > start {
                j -= 1;
                let prev = &file.lines[j - 1];
                if prev.in_test {
                    continue;
                }
                if prev.depth_start < depth {
                    break; // left the block (its opener)
                }
                if prev.depth_start != depth {
                    continue; // nested sub-block content
                }
                if let Some(snippet) = mutation_of(&prev.code, &root, MUTATORS) {
                    if file.is_allowed("protocol_order", j)
                        || file.is_allowed("protocol_order", lineno)
                    {
                        continue;
                    }
                    out.push(Violation {
                        rule: "protocol_order",
                        path: file.path.clone(),
                        line: j,
                        message: format!(
                            "`{snippet}` mutates `{root}` before the journal append on line {lineno}; append first so a failed write cannot desync state"
                        ),
                        fingerprint: fingerprint(&prev.raw),
                    });
                }
            }
        }
    }
}

/// If `code` mutates state rooted at `root` (`root.x += ...`, `root.y.push(`),
/// returns a short snippet for the message.
fn mutation_of(code: &str, root: &str, mutators: &[&str]) -> Option<String> {
    for op in ["+=", "-="] {
        if let Some(at) = code.find(op) {
            let head = code[..at].trim_end();
            if receiver_root(head, head.len()) == root {
                return Some(code.trim().trim_end_matches(';').to_string());
            }
        }
    }
    for needle in mutators {
        if let Some(at) = code.find(needle) {
            if receiver_root(code, at) == root {
                return Some(code.trim().trim_end_matches(';').to_string());
            }
        }
    }
    None
}

/// Rule 6: allow-annotation hygiene. Malformed `cdas-allow` comments and
/// unknown rule names are hard errors — a typo must not silently disable a
/// lint.
pub fn allow_syntax(file: &SourceFile, out: &mut Vec<Violation>) {
    for allow in &file.allows {
        if allow.rules.is_empty() {
            out.push(Violation {
                rule: "allow_syntax",
                path: file.path.clone(),
                line: allow.line,
                message: "malformed annotation; expected `// cdas-allow(rule): reason`".to_string(),
                fingerprint: fingerprint(&file.lines[allow.line - 1].raw),
            });
            continue;
        }
        for rule in &allow.rules {
            if !is_known_rule(rule) {
                out.push(Violation {
                    rule: "allow_syntax",
                    path: file.path.clone(),
                    line: allow.line,
                    message: format!("unknown rule `{rule}` in cdas-allow annotation"),
                    fingerprint: fingerprint(&file.lines[allow.line - 1].raw),
                });
            }
        }
    }
}
