//! The rule set: determinism, panic-freedom, codec exhaustiveness, lock
//! discipline, must-use coverage, and `cdas-allow` syntax validation.
//!
//! Every rule emits [`Violation`]s keyed by a *content fingerprint* (the
//! normalized line text) rather than a line number, so the committed
//! baseline survives unrelated edits that shift code up or down a file.

use crate::scan::SourceFile;
use crate::{fingerprint, Violation};

/// Names of every rule the analyzer knows, in report order.
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "panic_freedom",
    "codec_exhaustive",
    "lock_discipline",
    "must_use",
    "allow_syntax",
];

/// Returns true when `name` is a known rule.
pub fn is_known_rule(name: &str) -> bool {
    RULE_NAMES.contains(&name)
}

/// True when the char is part of a Rust identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `code` at identifier boundaries (the chars immediately
/// before and after the match must not extend an identifier).
fn find_token(code: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        let needle_end = needle.chars().next_back().unwrap_or(' ');
        let after_ok = !is_ident(needle_end) || !is_ident(after);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Rule 1: determinism. Bans wall-clock reads and hash-ordered containers in
/// production code — anything feeding `FleetReport`, `FleetEvent` streams, or
/// the journal must iterate in a stable order.
pub fn determinism(file: &SourceFile, out: &mut Vec<Violation>) {
    const NEEDLES: &[(&str, &str)] = &[
        (
            "Instant::now",
            "wall-clock read; derive time from the simulation clock",
        ),
        (
            "SystemTime::now",
            "wall-clock read; derive time from the simulation clock",
        ),
        (
            "HashMap",
            "hash-ordered container; use BTreeMap so drains are deterministic",
        ),
        (
            "HashSet",
            "hash-ordered container; use BTreeSet so drains are deterministic",
        ),
        (
            "RandomState",
            "hasher-seeded state leaks host entropy into iteration order",
        ),
    ];
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("determinism", lineno) {
            continue;
        }
        for (needle, why) in NEEDLES {
            if find_token(&line.code, needle).is_some() {
                out.push(Violation {
                    rule: "determinism",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}`: {why}"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
    }
}

/// Rule 2: panic-freedom. Bans `unwrap`/`expect`/panicking macros and bare
/// indexing in non-test code; a panic inside a shard thread surfaces only
/// after join, so fallible paths must return `CdasError` instead.
pub fn panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    const CALLS: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("panic_freedom", lineno) {
            continue;
        }
        let code = &line.code;
        for needle in CALLS {
            if code.contains(needle) {
                out.push(Violation {
                    rule: "panic_freedom",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}` can panic; return a typed error instead"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
        for needle in MACROS {
            if find_token(code, needle).is_some() {
                out.push(Violation {
                    rule: "panic_freedom",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{needle}` aborts the shard; return a typed error instead"),
                    fingerprint: fingerprint(&line.raw),
                });
            }
        }
        if let Some(col) = bare_index(code) {
            out.push(Violation {
                rule: "panic_freedom",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "bare indexing at column {} can panic; use `.get()` or a checked slice",
                    col + 1
                ),
                fingerprint: fingerprint(&line.raw),
            });
        }
    }
}

/// Detects `expr[...]` indexing: a `[` immediately preceded (ignoring spaces)
/// by an identifier char, `)`, or `]` — which excludes attributes (`#[...]`),
/// macro brackets (`vec![...]`), type positions (`-> [u8; 4]`), and slice
/// types behind a lifetime (`&'a [u8]`).
fn bare_index(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = chars[j - 1];
        if prev == ')' || prev == ']' {
            return Some(i);
        }
        if is_ident(prev) {
            // Walk back over the identifier; a leading `'` means it was a
            // lifetime (`&'a [u8]`), not an indexable expression.
            let mut k = j;
            while k > 0 && is_ident(chars[k - 1]) {
                k -= 1;
            }
            if k > 0 && chars[k - 1] == '\'' {
                continue;
            }
            return Some(i);
        }
    }
    None
}

/// Configuration for one codec-exhaustiveness check: an enum whose
/// hand-written `BinCodec` impl and round-trip tests must cover every variant.
#[derive(Debug, Clone)]
pub struct CodecSpec {
    /// The enum's name, e.g. `JournalRecord`.
    pub enum_name: &'static str,
    /// File (relative to the root) declaring the enum.
    pub decl_path: &'static str,
    /// File containing the `impl BinCodec for <enum>` block.
    pub codec_path: &'static str,
    /// Files whose test regions must mention every variant (round-trip tests).
    pub test_paths: &'static [&'static str],
}

/// Rule 3: codec exhaustiveness. Parses the enum's variants and verifies each
/// one appears in the encode arm, the decode arm, and a round-trip test.
pub fn codec_exhaustive(
    spec: &CodecSpec,
    files: &std::collections::BTreeMap<String, SourceFile>,
    out: &mut Vec<Violation>,
) {
    let Some(decl) = files.get(spec.decl_path) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.decl_path.to_string(),
            line: 1,
            message: format!(
                "declaring file for enum `{}` not found in scan set",
                spec.enum_name
            ),
            fingerprint: fingerprint(&format!("missing decl {}", spec.enum_name)),
        });
        return;
    };
    let Some((decl_line, variants)) = enum_variants(decl, spec.enum_name) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.decl_path.to_string(),
            line: 1,
            message: format!("enum `{}` not found in {}", spec.enum_name, spec.decl_path),
            fingerprint: fingerprint(&format!("missing enum {}", spec.enum_name)),
        });
        return;
    };
    let Some(codec) = files.get(spec.codec_path) else {
        out.push(Violation {
            rule: "codec_exhaustive",
            path: spec.codec_path.to_string(),
            line: 1,
            message: format!(
                "codec file for enum `{}` not found in scan set",
                spec.enum_name
            ),
            fingerprint: fingerprint(&format!("missing codec {}", spec.enum_name)),
        });
        return;
    };
    let (encode, decode) = codec_fn_bodies(codec, spec.enum_name);
    for variant in &variants {
        let qualified = format!("{}::{}", spec.enum_name, variant);
        let in_encode = encode.iter().any(|l| find_token(l, &qualified).is_some());
        let in_decode = decode.iter().any(|l| find_token(l, &qualified).is_some());
        let in_test = spec.test_paths.iter().any(|tp| {
            files.get(*tp).is_some_and(|tf| {
                tf.numbered()
                    .any(|(_, l)| l.in_test && find_token(&l.code, &qualified).is_some())
            })
        });
        let mut missing = Vec::new();
        if !in_encode {
            missing.push("encode arm");
        }
        if !in_decode {
            missing.push("decode arm");
        }
        if !in_test {
            missing.push("round-trip test mention");
        }
        if !missing.is_empty() {
            out.push(Violation {
                rule: "codec_exhaustive",
                path: spec.decl_path.to_string(),
                line: decl_line,
                message: format!("variant `{qualified}` is missing: {}", missing.join(", ")),
                fingerprint: fingerprint(&format!("{qualified} missing {}", missing.join(","))),
            });
        }
    }
}

/// Finds `enum <name>` and returns its 1-based declaration line plus the
/// variant names parsed from the depth-1 lines of its body.
fn enum_variants(file: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    let needle = format!("enum {name}");
    let mut decl_line = None;
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        if find_token(&line.code, &needle).is_some() {
            decl_line = Some(lineno);
            break;
        }
    }
    let start = decl_line?;
    let base_depth = file.lines[start - 1].depth_start;
    let mut variants = Vec::new();
    for (lineno, line) in file.numbered().skip(start - 1) {
        // Variant names sit at depth base+1; the enum ends when depth returns
        // to base after the opening brace.
        if lineno > start && line.depth_end <= base_depth && line.code.contains('}') {
            break;
        }
        if line.depth_start != base_depth + 1 {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(first) = trimmed.chars().next() else {
            continue;
        };
        if !first.is_ascii_uppercase() {
            continue;
        }
        let ident: String = trimmed.chars().take_while(|&c| is_ident(c)).collect();
        if !ident.is_empty() {
            variants.push(ident);
        }
    }
    Some((start, variants))
}

/// Extracts the lines of `fn encode` and `fn decode` inside
/// `impl BinCodec for <name>`.
fn codec_fn_bodies(file: &SourceFile, name: &str) -> (Vec<String>, Vec<String>) {
    let impl_needle = format!("impl BinCodec for {name}");
    let mut encode = Vec::new();
    let mut decode = Vec::new();
    let mut in_impl = false;
    let mut impl_depth = 0usize;
    let mut current: Option<&mut Vec<String>> = None;
    let mut fn_depth = 0usize;
    for line in &file.lines {
        if !in_impl {
            if line.code.contains(&impl_needle) {
                in_impl = true;
                impl_depth = line.depth_start;
            }
            continue;
        }
        if line.depth_end <= impl_depth && line.code.contains('}') && current.is_none() {
            break;
        }
        if current.is_none() {
            if find_token(&line.code, "fn encode").is_some() {
                current = Some(&mut encode);
                fn_depth = line.depth_start;
            } else if find_token(&line.code, "fn decode").is_some() {
                current = Some(&mut decode);
                fn_depth = line.depth_start;
            }
        }
        if let Some(body) = current.as_mut() {
            body.push(line.code.clone());
            if line.depth_end <= fn_depth && line.code.contains('}') {
                current = None;
            }
        }
    }
    (encode, decode)
}

/// Rule 4: lock discipline. Flags a `Mutex`/`RwLock` guard bound on one line
/// and still live when a later line calls into platform or journal I/O —
/// holding a stripe lock across `publish`/`poll`/`append`/`sync` serializes
/// shards and risks deadlock with the journal's own locking.
pub fn lock_discipline(file: &SourceFile, io_needles: &[&str], out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let Some(guard) = guard_binding(&line.code) else {
            continue;
        };
        let scope_depth = line.depth_start;
        for (later_no, later) in file.numbered().skip(lineno) {
            if later.depth_end < scope_depth {
                break;
            }
            let code = &later.code;
            if code.contains(&format!("drop({guard})")) {
                break;
            }
            if later.in_test {
                continue;
            }
            for needle in io_needles {
                let Some(at) = code.find(needle) else {
                    continue;
                };
                // Calls *through the guard itself* are the point of holding
                // it (e.g. `journal.append(..)` on the locked journal).
                if receiver_root(code, at) == guard {
                    continue;
                }
                if file.is_allowed("lock_discipline", later_no)
                    || file.is_allowed("lock_discipline", lineno)
                {
                    continue;
                }
                out.push(Violation {
                    rule: "lock_discipline",
                    path: file.path.clone(),
                    line: later_no,
                    message: format!(
                        "guard `{guard}` (line {lineno}) held across I/O call `{}`",
                        needle.trim_end_matches('(')
                    ),
                    fingerprint: fingerprint(&later.raw),
                });
            }
        }
    }
}

/// Parses `let [mut] <name> = <expr>.lock()/.read()/.write()` and returns the
/// guard name.
fn guard_binding(code: &str) -> Option<String> {
    let has_guard_call = [".lock()", ".read()", ".write()"]
        .iter()
        .any(|n| code.contains(n));
    if !has_guard_call {
        return None;
    }
    let let_pos = find_token(code, "let")?;
    let rest = code[let_pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// Returns the root identifier of the receiver chain ending at `at`, e.g.
/// `state` for `state.journal.append(`.
fn receiver_root(code: &str, at: usize) -> String {
    let head = &code[..at];
    let chain: String = head
        .chars()
        .rev()
        .take_while(|&c| is_ident(c) || c == '.' || c == ':')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    chain
        .split(['.', ':'])
        .find(|s| !s.is_empty())
        .unwrap_or("")
        .to_string()
}

/// Rule 5: must-use coverage. Every type in the configured list must carry
/// `#[must_use]` on its declaration, and `pub fn`s returning one wrapped in a
/// non-`Result` container need a fn-level `#[must_use]` (`Result` is already
/// `#[must_use]`, and doubling the attribute trips `clippy::double_must_use`).
pub fn must_use(file: &SourceFile, types: &[&str], out: &mut Vec<Violation>) {
    for ty in types {
        check_decl_must_use(file, ty, out);
    }
    check_fn_must_use(file, types, out);
}

fn check_decl_must_use(file: &SourceFile, ty: &str, out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let is_decl = find_token(&line.code, &format!("struct {ty}")).is_some()
            || find_token(&line.code, &format!("enum {ty}")).is_some();
        if !is_decl {
            continue;
        }
        if file.is_allowed("must_use", lineno) {
            return;
        }
        // Walk the contiguous attribute/doc lines above the declaration.
        let mut has = false;
        let mut i = lineno - 1;
        while i > 0 {
            let above = &file.lines[i - 1];
            let t = above.raw.trim_start();
            if t.starts_with("#[") || t.starts_with("///") || t.starts_with("#![") {
                if t.starts_with("#[must_use") {
                    has = true;
                }
                i -= 1;
            } else {
                break;
            }
        }
        if !has {
            out.push(Violation {
                rule: "must_use",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "`{ty}` must carry `#[must_use]`; discarding one loses accounting"
                ),
                fingerprint: fingerprint(&line.raw),
            });
        }
        return;
    }
}

fn check_fn_must_use(file: &SourceFile, types: &[&str], out: &mut Vec<Violation>) {
    for (lineno, line) in file.numbered() {
        if line.in_test || file.is_allowed("must_use", lineno) {
            continue;
        }
        let code = &line.code;
        let Some(fn_pos) = find_token(code, "fn") else {
            continue;
        };
        if find_token(code, "pub").is_none() {
            continue;
        }
        // Join the signature across lines until the body opens or the item
        // ends (trait method without a body).
        let mut sig = code[fn_pos..].to_string();
        let mut j = lineno;
        while !sig.contains('{') && !sig.contains(';') && j < file.lines.len() && j < lineno + 8 {
            sig.push(' ');
            sig.push_str(&file.lines[j].code);
            j += 1;
        }
        let Some(arrow) = sig.find("->") else {
            continue;
        };
        let ret = sig[arrow + 2..]
            .split(['{', ';'])
            .next()
            .unwrap_or("")
            .trim();
        let mentions = types.iter().find(|ty| find_token(ret, ty).is_some());
        let Some(ty) = mentions else {
            continue;
        };
        // `Result<...>` is inherently must_use; a direct return of the listed
        // type is covered by the type-level attribute.
        if find_token(ret, "Result").is_some() {
            continue;
        }
        let direct = ret == *ty || ret.ends_with(&format!("::{ty}"));
        if direct {
            continue;
        }
        // Wrapped in Option/Vec/tuple/...: the fn needs its own attribute.
        let mut has = false;
        let mut i = lineno - 1;
        while i > 0 {
            let t = file.lines[i - 1].raw.trim_start();
            if t.starts_with("#[") || t.starts_with("///") {
                if t.starts_with("#[must_use") {
                    has = true;
                }
                i -= 1;
            } else {
                break;
            }
        }
        if !has {
            out.push(Violation {
                rule: "must_use",
                path: file.path.clone(),
                line: lineno,
                message: format!("pub fn returns `{ret}` wrapping `{ty}` but lacks `#[must_use]`"),
                fingerprint: fingerprint(&line.raw),
            });
        }
    }
}

/// Rule 6: allow-annotation hygiene. Malformed `cdas-allow` comments and
/// unknown rule names are hard errors — a typo must not silently disable a
/// lint.
pub fn allow_syntax(file: &SourceFile, out: &mut Vec<Violation>) {
    for allow in &file.allows {
        if allow.rules.is_empty() {
            out.push(Violation {
                rule: "allow_syntax",
                path: file.path.clone(),
                line: allow.line,
                message: "malformed annotation; expected `// cdas-allow(rule): reason`".to_string(),
                fingerprint: fingerprint(&file.lines[allow.line - 1].raw),
            });
            continue;
        }
        for rule in &allow.rules {
            if !is_known_rule(rule) {
                out.push(Violation {
                    rule: "allow_syntax",
                    path: file.path.clone(),
                    line: allow.line,
                    message: format!("unknown rule `{rule}` in cdas-allow annotation"),
                    fingerprint: fingerprint(&file.lines[allow.line - 1].raw),
                });
            }
        }
    }
}
