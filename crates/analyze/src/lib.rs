//! `cdas-analyze`: the repo-specific static-analysis pass.
//!
//! The workspace's correctness story leans on invariants no general-purpose
//! lint checks: fleet reports must be bit-identical across execution modes
//! (so nothing in production code may consult the wall clock or iterate a
//! hash-ordered container), shard threads must not panic (a panic surfaces
//! only after join), the hand-written journal codec must cover every enum
//! variant in both directions, and lock guards must not be held across
//! platform or journal I/O. This crate walks every production crate with a
//! hand-rolled line scanner (the container is offline, so `syn` is not an
//! option — same in-tree spirit as `cdas_core::codec`) and enforces those
//! rules as a hard CI gate.
//!
//! The analyzer runs in two passes. Pass 1 scans every file and builds a
//! workspace symbol index (fn definitions, signatures, struct-field types)
//! plus an approximate call graph with unique-name resolution
//! ([`index`], [`callgraph`]). Pass 2 runs the file-local rules *and* three
//! cross-file rules over that graph: `lock_order` (deadlock cycles in the
//! lock-acquisition graph), `unit_taint` (minutes/dollars/probability
//! confusion in bare `f64` arithmetic, [`units`]), and `protocol_order`
//! (publish/collect ticket sequencing and journal append-before-mutate).
//!
//! Pre-existing debt is grandfathered in a committed baseline file keyed by
//! line *content*, not line numbers; intentional sites carry an inline
//! `// cdas-allow(rule): reason` annotation. See ARCHITECTURE.md § Static
//! analysis for the workflow.

pub mod baseline;
pub mod callgraph;
pub mod index;
pub mod rules;
pub mod scan;
pub mod units;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rules::{CodecSpec, ProtocolSpec};
use scan::SourceFile;

/// One finding: a rule, the offending site, and a content fingerprint that
/// keys the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired (one of [`rules::RULE_NAMES`]).
    pub rule: &'static str,
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Normalized text of the offending line; the baseline key.
    pub fingerprint: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Normalizes a source line into its baseline fingerprint: trimmed, with
/// internal whitespace runs collapsed, so reformatting does not orphan
/// baseline entries.
pub fn fingerprint(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut last_space = true;
    for c in raw.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

/// What to analyze and with which rule parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root all paths are resolved against.
    pub root: PathBuf,
    /// Directories (relative to the root) to scan recursively for `.rs`.
    pub scan_dirs: Vec<&'static str>,
    /// Enums whose codecs must be exhaustive.
    pub codecs: Vec<CodecSpec>,
    /// Types that must carry `#[must_use]` (and whose wrapped returns need
    /// fn-level attributes).
    pub must_use_types: Vec<&'static str>,
    /// Call needles treated as platform/journal I/O by the lock rule.
    pub io_needles: Vec<&'static str>,
    /// Publish/collect call families and journal paths for `protocol_order`,
    /// one spec per ticket protocol (batch tickets, service job tickets, …).
    pub protocols: Vec<ProtocolSpec>,
}

impl Config {
    /// The production configuration for this workspace: every prod crate's
    /// `src` tree, the journal/core codec enums, and the receipt types the
    /// ISSUE list pins.
    pub fn workspace(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            scan_dirs: vec![
                "crates/core/src",
                "crates/crowd/src",
                "crates/engine/src",
                "crates/cdas/src",
            ],
            codecs: vec![
                CodecSpec {
                    enum_name: "JournalRecord",
                    decl_path: "crates/engine/src/journal/record.rs",
                    codec_path: "crates/engine/src/journal/record.rs",
                    test_paths: &["crates/engine/src/journal/record.rs"],
                },
                CodecSpec {
                    enum_name: "FleetEvent",
                    decl_path: "crates/engine/src/fleet.rs",
                    codec_path: "crates/engine/src/journal/record.rs",
                    test_paths: &["crates/engine/src/journal/record.rs"],
                },
                CodecSpec {
                    enum_name: "ExecutionMode",
                    decl_path: "crates/engine/src/fleet.rs",
                    codec_path: "crates/engine/src/journal/record.rs",
                    test_paths: &["crates/engine/src/journal/record.rs"],
                },
                CodecSpec {
                    enum_name: "Verdict",
                    decl_path: "crates/core/src/verification/mod.rs",
                    codec_path: "crates/core/src/codec.rs",
                    test_paths: &["crates/core/src/codec.rs"],
                },
                CodecSpec {
                    enum_name: "TerminationStrategy",
                    decl_path: "crates/core/src/online/termination.rs",
                    codec_path: "crates/core/src/codec.rs",
                    test_paths: &["crates/core/src/codec.rs"],
                },
            ],
            must_use_types: vec![
                "CancelReceipt",
                "RecoveryReport",
                "BatchTicket",
                "WorkerLease",
                "JobTicket",
                "ServiceRecovery",
            ],
            io_needles: vec![
                ".publish(",
                ".publish_to(",
                ".poll(",
                ".cancel(",
                ".append(",
                ".sync(",
                ".sync_all(",
                ".flush(",
                "File::create",
                "File::open",
                "OpenOptions::new",
                "fs::rename",
                "fs::remove_file",
            ],
            protocols: vec![
                ProtocolSpec {
                    publish_calls: vec!["publish_batch", "publish_batch_to"],
                    collect_calls: vec![
                        "collect_batch",
                        "collect_batch_cached",
                        "collect_batch_clocked",
                        "collect_batch_clocked_cached",
                        "begin_clocked",
                    ],
                    ticket_type: "BatchTicket",
                    journal_paths: vec!["crates/engine/src/journal/"],
                },
                // The service layer's job tickets: a `submit` mints one, and the
                // manifest journal in `service/` must append before mutating.
                ProtocolSpec {
                    publish_calls: vec!["submit"],
                    collect_calls: vec!["poll", "subscribe", "shutdown"],
                    ticket_type: "JobTicket",
                    journal_paths: vec!["crates/engine/src/service/"],
                },
            ],
        }
    }
}

/// An I/O or configuration failure while running the analysis (distinct from
/// violations, which are findings, not errors).
#[derive(Debug)]
pub struct AnalyzeError {
    /// What failed.
    pub detail: String,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analyze error: {}", self.detail)
    }
}

impl std::error::Error for AnalyzeError {}

impl AnalyzeError {
    /// Builds an error from anything displayable.
    pub fn new(detail: impl std::fmt::Display) -> AnalyzeError {
        AnalyzeError {
            detail: detail.to_string(),
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzeError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| AnalyzeError::new(format!("read_dir {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError::new(format!("{}: {e}", dir.display())))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every configured file and returns them keyed by root-relative path.
pub fn scan_workspace(config: &Config) -> Result<BTreeMap<String, SourceFile>, AnalyzeError> {
    let mut files = BTreeMap::new();
    for dir in &config.scan_dirs {
        let abs = config.root.join(dir);
        if !abs.is_dir() {
            return Err(AnalyzeError::new(format!(
                "scan directory `{dir}` not found under {}",
                config.root.display()
            )));
        }
        let mut paths = Vec::new();
        collect_rs(&abs, &mut paths)?;
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| AnalyzeError::new(format!("read {}: {e}", path.display())))?;
            let rel = path
                .strip_prefix(&config.root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.insert(rel.clone(), SourceFile::scan(&rel, &text));
        }
    }
    Ok(files)
}

/// Runs every rule over the scanned files and returns the sorted findings.
pub fn run(config: &Config) -> Result<Vec<Violation>, AnalyzeError> {
    let files = scan_workspace(config)?;
    Ok(run_on(config, &files))
}

/// Runs the rules over an already-scanned file set (used by the fixture
/// self-tests, which scan synthetic workspaces).
pub fn run_on(config: &Config, files: &BTreeMap<String, SourceFile>) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files.values() {
        rules::determinism(file, &mut out);
        rules::panic_freedom(file, &mut out);
        rules::lock_discipline(file, &config.io_needles, &mut out);
        rules::must_use(file, &config.must_use_types, &mut out);
        rules::allow_syntax(file, &mut out);
    }
    for spec in &config.codecs {
        rules::codec_exhaustive(spec, files, &mut out);
    }
    // Pass 2: the cross-file rules over the symbol index and call graph.
    let (index, _graph, lock_graph) = build_pass2(config, files, &mut out);
    rules::lock_order_cycles(&lock_graph, files, &mut out);
    for file in files.values() {
        rules::unit_taint(file, &index, &mut out);
        for spec in &config.protocols {
            rules::protocol_order(file, spec, &index, &mut out);
        }
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    // Nested fns are walked both standalone and as part of their enclosing
    // body; identical findings collapse.
    out.dedup();
    out
}

/// Builds the pass-2 artifacts and runs the lock-order collection walk
/// (which both populates the lock graph and emits held-across-I/O findings).
pub fn build_pass2(
    config: &Config,
    files: &BTreeMap<String, SourceFile>,
    out: &mut Vec<Violation>,
) -> (
    index::WorkspaceIndex,
    callgraph::CallGraph,
    callgraph::LockGraph,
) {
    let index = index::WorkspaceIndex::build(files);
    let graph = callgraph::CallGraph::build(files, &index, &config.io_needles);
    let mut lock_graph = callgraph::LockGraph::default();
    for file in files.values() {
        rules::lock_order_collect(
            file,
            &index,
            &graph,
            &config.io_needles,
            &mut lock_graph,
            out,
        );
    }
    (index, graph, lock_graph)
}
