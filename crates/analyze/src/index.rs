//! Pass 1 of the two-pass analyzer: the workspace symbol index.
//!
//! Built on top of the comment/string-stripping scanner (still zero deps, no
//! `syn`), the index records every `fn` definition with its signature span,
//! parsed parameters and return type, plus a workspace-wide struct-field type
//! table. Pass 2 ([`crate::callgraph`] and the cross-file rules) resolves
//! method calls against this index by *unique name*: a name defined more than
//! once in the scan set is treated as ambiguous and never resolved, trading
//! recall for zero-false-positive resolution — the right bias for a linter
//! without type information.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::SourceFile;

/// One parsed function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (empty for pattern parameters the scanner cannot name).
    pub name: String,
    /// The declared type text, trimmed (e.g. `f64`, `&mut P`, `Option<f64>`).
    pub ty: String,
}

/// One `fn` definition found in the scan set.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// Root-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 1-based first line of the body (the line carrying the opening `{`);
    /// equals `decl_line` for single-line items. `None` for bodyless trait
    /// method declarations.
    pub body_start: Option<usize>,
    /// 1-based last line of the body (the line carrying the closing `}`).
    pub body_end: usize,
    /// The joined signature text, from `fn` up to (not including) `{` or `;`.
    pub signature: String,
    /// Parsed value parameters (receiver `self` forms are skipped).
    pub params: Vec<Param>,
    /// Return type text after `->`, or empty for `()`.
    pub ret: String,
    /// Whether the definition sits in a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

impl FnInfo {
    /// Whether this fn returns a lock guard (`MutexGuard`, `RwLock*Guard`).
    pub fn returns_guard(&self) -> bool {
        self.ret.contains("Guard")
    }
}

/// The workspace symbol index: pass 1's output.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Every fn definition, in (path, line) order.
    pub fns: Vec<FnInfo>,
    /// Fn name → indices into [`Self::fns`] (test fns excluded).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Struct field name → set of declared type texts, across all structs.
    pub field_types: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceIndex {
    /// Builds the index over a scanned file set.
    pub fn build(files: &BTreeMap<String, SourceFile>) -> WorkspaceIndex {
        let mut index = WorkspaceIndex::default();
        for file in files.values() {
            collect_fns(file, &mut index.fns);
            collect_fields(file, &mut index.field_types);
        }
        for (i, f) in index.fns.iter().enumerate() {
            if !f.in_test {
                index.by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        index
    }

    /// Resolves a call by name to a unique non-test definition, or `None`
    /// when the name is undefined or ambiguous (defined more than once).
    pub fn resolve(&self, name: &str) -> Option<usize> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Whether any struct in the workspace declares a field `name` whose type
    /// is (or wraps) `f64` — the gate the unit rule uses before classifying a
    /// field access by its name.
    pub fn is_f64_field(&self, name: &str) -> bool {
        self.field_types
            .get(name)
            .is_some_and(|types| types.iter().any(|t| t.contains("f64")))
    }
}

/// True when the char is part of a Rust identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans one file for `fn` definitions.
fn collect_fns(file: &SourceFile, out: &mut Vec<FnInfo>) {
    for (lineno, line) in file.numbered() {
        let code = &line.code;
        let Some(fn_pos) = find_fn_keyword(code) else {
            continue;
        };
        // Parse the name: `fn <ident>` (generics or parens follow).
        let after = code[fn_pos + 2..].trim_start();
        let name: String = after.chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        // Join the signature across lines until the body opens or the item
        // ends without one (trait method declaration).
        let mut sig = code[fn_pos..].to_string();
        let mut j = lineno; // 1-based index of the line just appended
        while !sig.contains('{') && !sig.contains(';') && j < file.lines.len() && j < lineno + 24 {
            sig.push(' ');
            sig.push_str(&file.lines[j].code);
            j += 1;
        }
        let open_line = if sig.contains('{') { Some(j) } else { None };
        let sig_text = sig
            .split(['{', ';'])
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        let (params, ret) = parse_signature(&sig_text);
        // The body spans from the opening brace to the line where depth
        // returns to the declaration line's starting depth.
        let fn_depth = line.depth_start;
        let mut body_end = open_line.unwrap_or(lineno);
        if let Some(open) = open_line {
            for (later_no, later) in file.numbered().skip(open - 1) {
                body_end = later_no;
                if later.depth_end <= fn_depth && later.code.contains('}') {
                    break;
                }
            }
        }
        out.push(FnInfo {
            name,
            path: file.path.clone(),
            decl_line: lineno,
            body_start: open_line,
            body_end,
            signature: sig_text,
            params,
            ret,
            in_test: line.in_test,
        });
    }
}

/// Position of a `fn` keyword that starts a definition (not `Fn` bounds).
fn find_fn_keyword(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + 2..].chars().next().unwrap_or(' ');
        if before_ok && after == ' ' {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

/// Parses `fn name(<params>) -> <ret>` into parameter and return info.
fn parse_signature(sig: &str) -> (Vec<Param>, String) {
    let Some(open) = sig.find('(') else {
        return (Vec::new(), String::new());
    };
    // Find the matching close paren.
    let mut depth = 0i32;
    let mut close = sig.len();
    for (i, c) in sig.char_indices() {
        if i < open {
            continue;
        }
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth <= 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &sig[open + 1..close.min(sig.len())];
    let mut params = Vec::new();
    for piece in split_top_level(inner) {
        let piece = piece.trim();
        if piece.is_empty() || piece.ends_with("self") {
            continue; // receiver: self, &self, &mut self, mut self
        }
        let Some(colon) = piece.find(':') else {
            continue;
        };
        let raw_name = piece[..colon].trim();
        let raw_name = raw_name.strip_prefix("mut ").unwrap_or(raw_name).trim();
        // Only simple identifier bindings are indexed; tuple/struct patterns
        // have no single name to classify.
        if !raw_name.chars().all(is_ident) || raw_name.is_empty() {
            continue;
        }
        params.push(Param {
            name: raw_name.to_string(),
            ty: piece[colon + 1..].trim().to_string(),
        });
    }
    let ret = match sig[close.min(sig.len())..].find("->") {
        Some(arrow) => sig[close + arrow + 2..]
            .split(" where ")
            .next()
            .unwrap_or("")
            .trim()
            .to_string(),
        None => String::new(),
    };
    (params, ret)
}

/// Splits `a, b, c` at commas not nested inside `<>`, `()`, `[]`.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Scans one file for struct declarations and records field name → type.
fn collect_fields(file: &SourceFile, out: &mut BTreeMap<String, BTreeSet<String>>) {
    let mut in_struct: Option<usize> = None; // base depth of the open struct
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if let Some(base) = in_struct {
            if line.depth_end <= base && line.code.contains('}') {
                in_struct = None;
                continue;
            }
            if line.depth_start != base + 1 {
                continue;
            }
            // A field line: `pub? name: Type,`
            let body = code.strip_prefix("pub ").unwrap_or(code);
            let name: String = body.chars().take_while(|&c| is_ident(c)).collect();
            let rest = &body[name.len()..];
            if name.is_empty() || !rest.trim_start().starts_with(':') {
                continue;
            }
            let ty = rest
                .trim_start()
                .trim_start_matches(':')
                .trim()
                .trim_end_matches(',')
                .to_string();
            if !ty.is_empty() {
                out.entry(name).or_default().insert(ty);
            }
            continue;
        }
        // `struct Name {` — tuple structs and unit structs carry no named
        // fields and are skipped.
        if let Some(pos) = code.find("struct ") {
            let before_ok = pos == 0 || !is_ident(code[..pos].chars().next_back().unwrap_or(' '));
            if before_ok && line.code.contains('{') {
                in_struct = Some(line.depth_start);
                // Single-line struct with `{ .. }` closed on the same line.
                if line.depth_end <= line.depth_start {
                    in_struct = None;
                }
            }
        }
    }
}
