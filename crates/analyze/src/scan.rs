//! A hand-rolled line scanner for Rust source.
//!
//! The container is offline, so `syn` is unavailable; in the same in-tree
//! spirit as `cdas_core::codec` this module implements the minimal lexical
//! analysis the rules need: stripping comments and string/char literals,
//! tracking brace depth, detecting `#[cfg(test)]` / `#[test]` regions, and
//! collecting `// cdas-allow(rule): reason` escape hatches.
//!
//! The scanner is deliberately line-oriented. It does not build an AST; each
//! rule works over [`SourceLine`]s whose `code` field contains only the
//! characters that are live Rust tokens (literal contents and comments are
//! blanked with spaces so byte offsets still line up with the raw text).

use std::collections::BTreeMap;

/// One physical line of a scanned source file.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// The raw line text exactly as read (without the trailing newline).
    pub raw: String,
    /// The line with comments removed and string/char literal contents
    /// blanked out by spaces. Offsets match `raw`.
    pub code: String,
    /// The concatenated comment text found on the line (line and block
    /// comments), used to parse `cdas-allow` annotations.
    pub comment: String,
    /// Brace depth at the start of the line (before any `{`/`}` on it).
    pub depth_start: usize,
    /// Brace depth after the line's braces have been applied.
    pub depth_end: usize,
    /// True when the line sits inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

/// A parsed `// cdas-allow(rule, ...): reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule names listed inside the parentheses.
    pub rules: Vec<String>,
    /// The free-form justification after the colon.
    pub reason: String,
    /// 1-based line the annotation textually appears on.
    pub line: usize,
    /// 1-based line the annotation applies to (the same line for trailing
    /// annotations, the next line for standalone comment lines).
    pub applies_to: usize,
}

/// A scanned source file: classified lines plus resolved allow annotations.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, with `/` separators.
    pub path: String,
    /// The classified lines, index 0 = line 1.
    pub lines: Vec<SourceLine>,
    /// All `cdas-allow` annotations found in the file.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Scans `text` into classified lines.
    pub fn scan(path: &str, text: &str) -> SourceFile {
        let mut lexer = Lexer::default();
        let mut lines = Vec::new();
        for raw in text.lines() {
            let (code, comment) = lexer.strip_line(raw);
            let depth_start = lexer.depth;
            for ch in code.chars() {
                match ch {
                    '{' => lexer.depth += 1,
                    '}' => lexer.depth = lexer.depth.saturating_sub(1),
                    _ => {}
                }
            }
            lines.push(SourceLine {
                raw: raw.to_string(),
                code,
                comment,
                depth_start,
                depth_end: lexer.depth,
                in_test: false,
            });
        }
        mark_test_regions(&mut lines);
        let allows = collect_allows(&lines);
        SourceFile {
            path: path.to_string(),
            lines,
            allows,
        }
    }

    /// Returns true when `rule` is allowed on 1-based line `line`.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.applies_to == line && a.rules.iter().any(|r| r == rule))
    }

    /// Iterates over (1-based line number, line) pairs.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &SourceLine)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Carry-over lexer state between lines.
#[derive(Default)]
struct Lexer {
    /// Brace depth in live code.
    depth: usize,
    /// Nesting level of `/* */` block comments (they nest in Rust).
    block_comment: usize,
    /// True while inside a normal `"` string that continued past a line end.
    in_string: bool,
    /// `Some(hashes)` while inside a raw string `r##"..."##`.
    raw_string: Option<usize>,
}

impl Lexer {
    /// Splits one raw line into (code-with-literals-blanked, comment-text).
    fn strip_line(&mut self, raw: &str) -> (String, String) {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            if self.block_comment > 0 {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.block_comment -= 1;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    self.block_comment += 1;
                    i += 2;
                } else {
                    comment.push(bytes[i]);
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.raw_string {
                if bytes[i] == '"' && closes_raw(&bytes, i + 1, hashes) {
                    self.raw_string = None;
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            if self.in_string {
                match bytes[i] {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        self.in_string = false;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    comment.push_str(&raw[char_offset(raw, i)..]);
                    while code.ends_with(' ') {
                        code.pop();
                    }
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.block_comment += 1;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                '"' => {
                    self.in_string = true;
                    code.push('"');
                    i += 1;
                }
                'r' if is_raw_string_start(&bytes, i) => {
                    let hashes = count_hashes(&bytes, i + 1);
                    self.raw_string = Some(hashes);
                    for _ in 0..(2 + hashes) {
                        code.push(' ');
                    }
                    i += 2 + hashes;
                }
                'b' if bytes.get(i + 1) == Some(&'"') && !prev_is_ident(&bytes, i) => {
                    self.in_string = true;
                    code.push(' ');
                    code.push('"');
                    i += 2;
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: a char literal
                    // closes with a `'` one or two (escaped) chars later.
                    if let Some(len) = char_literal_len(&bytes, i) {
                        for _ in 0..len {
                            code.push(' ');
                        }
                        i += len;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }
}

/// Byte offset of the `idx`-th char of `s`.
fn char_offset(s: &str, idx: usize) -> usize {
    s.char_indices()
        .nth(idx)
        .map(|(off, _)| off)
        .unwrap_or(s.len())
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    if prev_is_ident(bytes, i) {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn count_hashes(bytes: &[char], mut i: usize) -> usize {
    let start = i;
    while bytes.get(i) == Some(&'#') {
        i += 1;
    }
    i - start
}

fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Length in chars of a char literal starting at `'`, or `None` for a
/// lifetime / loop label.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote (handles \n, \x7f, \u{...}).
            let mut j = i + 2;
            while j < bytes.len() && j < i + 12 {
                if bytes[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items as test code.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut pending = false;
    let mut pending_start = 0usize;
    let mut region_depth: Option<usize> = None;
    for i in 0..lines.len() {
        let code = lines[i].code.clone();
        if let Some(depth) = region_depth {
            lines[i].in_test = true;
            if lines[i].depth_end <= depth && code.contains('}') {
                region_depth = None;
            }
            continue;
        }
        if pending {
            lines[i].in_test = true;
            if code.contains('{') {
                // The item body opened: the region lasts until depth returns
                // to what it was before the opening brace.
                region_depth = Some(lines[i].depth_start);
                for line in lines.iter_mut().take(i + 1).skip(pending_start) {
                    line.in_test = true;
                }
                pending = false;
                // Single-line item: `#[test] fn f() { .. }`.
                if lines[i].depth_end <= lines[i].depth_start {
                    region_depth = None;
                }
            } else if code.contains(';') {
                pending = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") || contains_token(&code, "#[test]") {
            pending = true;
            pending_start = i;
            lines[i].in_test = true;
            if code.contains('{') {
                region_depth = Some(lines[i].depth_start);
                if lines[i].depth_end <= lines[i].depth_start {
                    region_depth = None;
                }
                pending = false;
            }
        }
    }
}

fn contains_token(code: &str, token: &str) -> bool {
    code.contains(token)
}

/// Extracts `cdas-allow` annotations from comment text.
fn collect_allows(lines: &[SourceLine]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(pos) = line.comment.find("cdas-allow") else {
            continue;
        };
        let lineno = i + 1;
        let rest = &line.comment[pos + "cdas-allow".len()..];
        // Prose *mentioning* cdas-allow (docs, this comment) is not an
        // annotation attempt; only `cdas-allow(` is.
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        let parsed = parse_allow(rest);
        // A comment-only line annotates the next line; a trailing comment
        // annotates its own line.
        let applies_to = if line.code.trim().is_empty() {
            lineno + 1
        } else {
            lineno
        };
        match parsed {
            Some((rules, reason)) => allows.push(Allow {
                rules,
                reason,
                line: lineno,
                applies_to,
            }),
            None => allows.push(Allow {
                rules: Vec::new(),
                reason: String::new(),
                line: lineno,
                applies_to,
            }),
        }
    }
    allows
}

/// Parses `(rule, rule2): reason` after the `cdas-allow` keyword.
fn parse_allow(rest: &str) -> Option<(Vec<String>, String)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let after = inner[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((rules, reason.to_string()))
}

/// Counts, for diagnostics, how many lines of each kind a file has.
#[derive(Debug, Default, Clone, Copy)]
pub struct LineStats {
    /// Lines carrying live (non-test) code tokens.
    pub prod_code: usize,
    /// Lines inside test regions.
    pub test: usize,
}

/// Computes [`LineStats`] for a scanned file.
pub fn stats(file: &SourceFile) -> LineStats {
    let mut s = LineStats::default();
    for line in &file.lines {
        if line.in_test {
            s.test += 1;
        } else if !line.code.trim().is_empty() {
            s.prod_code += 1;
        }
    }
    s
}

/// Returns a map from 1-based line to the allow annotations applying there.
pub fn allows_by_line(file: &SourceFile) -> BTreeMap<usize, Vec<&Allow>> {
    let mut map: BTreeMap<usize, Vec<&Allow>> = BTreeMap::new();
    for allow in &file.allows {
        map.entry(allow.applies_to).or_default().push(allow);
    }
    map
}
