//! Error type shared by every module of the quality-sensitive answering model.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T, E = CdasError> = std::result::Result<T, E>;

/// Errors produced by the quality-sensitive answering model.
///
/// Every variant carries enough context to explain *why* a model refused to produce an
/// estimate; callers in the engine surface these directly to the job requester.
#[derive(Debug, Clone, PartialEq)]
pub enum CdasError {
    /// The mean worker accuracy `μ` is not usable by the prediction model.
    ///
    /// Theorem 3 requires `μ > 0.5`: if the average worker is no better than a coin flip,
    /// no number of workers makes a majority reliable.
    InvalidMeanAccuracy {
        /// The offending mean accuracy.
        mu: f64,
    },
    /// A worker accuracy outside `(0, 1)` was supplied where an open-interval value is
    /// required (e.g. when computing the log-odds confidence).
    InvalidWorkerAccuracy {
        /// The offending accuracy value.
        accuracy: f64,
    },
    /// The user-required accuracy `C` is outside the half-open interval `[0, 1)`.
    InvalidRequiredAccuracy {
        /// The offending required accuracy.
        required: f64,
    },
    /// An observation with no votes was given to a component that needs at least one vote.
    EmptyObservation,
    /// The answer domain is too small (fewer than two possible answers).
    DegenerateDomain {
        /// The offending domain size.
        size: usize,
    },
    /// A sampling plan was requested with a rate outside `(0, 1]`.
    InvalidSamplingRate {
        /// The offending sampling rate.
        rate: f64,
    },
    /// A quantity that must be positive was zero or negative.
    NonPositive {
        /// Human-readable name of the quantity.
        what: &'static str,
    },
    /// The prediction model's worker estimate is astronomically large — the required
    /// accuracy is so close to 1 (or the mean worker accuracy so close to ½) that the
    /// Chernoff bound demands more workers than any HIT could ever be assigned. The
    /// inputs are *individually* valid, which is why this is a separate variant: the
    /// combination is what cannot be served.
    WorkerEstimateOverflow {
        /// The required accuracy `C` that produced the estimate.
        required: f64,
        /// The mean worker accuracy `μ` that produced the estimate.
        mu: f64,
        /// The conservative upper bound that overflowed the refinement's search range
        /// (saturated at `u64::MAX` when it exceeds even that).
        upper: u64,
    },
    /// A job demands more concurrent workers than the shared pool roster can ever supply,
    /// so scheduling it would wait forever.
    PoolExhausted {
        /// Workers the job's batches need at once.
        needed: usize,
        /// Workers the shared roster holds in total.
        available: usize,
    },
    /// The scheduler detected a tick in which no batch could be published or ingested
    /// although jobs remain unfinished (a progress bug or an impossible configuration).
    SchedulerStalled {
        /// The tick at which progress stopped.
        ticks: usize,
    },
    /// A fleet was built over a crowd with no workers: nothing could ever be dispatched.
    EmptyFleet,
    /// A job was submitted with no questions: there is no human part to crowdsource.
    EmptyJob {
        /// The offending job's name.
        name: String,
    },
    /// The requested shard count cannot partition the fleet's crowd: zero shards serve
    /// nothing, and more shards than workers would leave shards with empty rosters.
    InvalidShardCount {
        /// The requested shard count.
        shards: usize,
        /// The number of workers in the crowd being partitioned.
        workers: usize,
    },
    /// An I/O operation on the write-ahead journal failed (open, read, write, or sync).
    JournalIo {
        /// The path (directory or segment file) the operation touched.
        path: String,
        /// The underlying I/O error, rendered to text (keeps the variant `Clone + PartialEq`).
        detail: String,
    },
    /// A journal record failed its integrity checks somewhere other than the torn tail of
    /// the final segment — a CRC mismatch, an undecodable payload, or a frame that
    /// overruns a non-final segment. Unlike a torn tail (expected after a crash), this
    /// means the journal was damaged after it was written.
    JournalCorrupt {
        /// The segment file in which the damage was found.
        segment: String,
        /// Byte offset of the damaged record frame within the segment.
        offset: u64,
        /// What exactly failed to check out.
        detail: String,
    },
    /// The journal holds no `RunStarted` record, so there is no run to recover — either
    /// the directory is empty or the process died before the header record was durable.
    JournalEmpty,
    /// Replaying the journal diverged from the journaled history: deterministic
    /// re-execution produced a dispatch, charge, or commit that contradicts a journaled
    /// record. The journal belongs to a different configuration or was edited.
    JournalDiverged {
        /// The first contradiction found.
        detail: String,
    },
}

impl fmt::Display for CdasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdasError::InvalidMeanAccuracy { mu } => write!(
                f,
                "mean worker accuracy must be in (0.5, 1.0) for the prediction model, got {mu}"
            ),
            CdasError::InvalidWorkerAccuracy { accuracy } => {
                write!(
                    f,
                    "worker accuracy must lie strictly inside (0, 1), got {accuracy}"
                )
            }
            CdasError::InvalidRequiredAccuracy { required } => {
                write!(f, "required accuracy must lie in [0, 1), got {required}")
            }
            CdasError::EmptyObservation => write!(f, "observation contains no votes"),
            CdasError::DegenerateDomain { size } => {
                write!(
                    f,
                    "answer domain must contain at least 2 answers, got {size}"
                )
            }
            CdasError::InvalidSamplingRate { rate } => {
                write!(f, "sampling rate must lie in (0, 1], got {rate}")
            }
            CdasError::NonPositive { what } => write!(f, "{what} must be positive"),
            CdasError::WorkerEstimateOverflow { required, mu, upper } => write!(
                f,
                "worker estimate overflowed: required accuracy {required} with mean worker \
                 accuracy {mu} needs ~{upper} workers, beyond any dispatchable HIT"
            ),
            CdasError::PoolExhausted { needed, available } => write!(
                f,
                "job needs {needed} concurrent workers but the shared pool roster only has {available}"
            ),
            CdasError::SchedulerStalled { ticks } => {
                write!(f, "scheduler made no progress at tick {ticks}")
            }
            CdasError::EmptyFleet => {
                write!(f, "fleet crowd has no workers; nothing can be dispatched")
            }
            CdasError::EmptyJob { name } => {
                write!(f, "job {name:?} has no questions to crowdsource")
            }
            CdasError::InvalidShardCount { shards, workers } => write!(
                f,
                "cannot split a {workers}-worker crowd into {shards} shards \
                 (need 1 <= shards <= workers)"
            ),
            CdasError::JournalIo { path, detail } => {
                write!(f, "journal I/O error at {path}: {detail}")
            }
            CdasError::JournalCorrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "journal segment {segment} corrupt at byte {offset}: {detail}"
            ),
            CdasError::JournalEmpty => {
                write!(f, "journal holds no run to recover (no RunStarted record)")
            }
            CdasError::JournalDiverged { detail } => write!(
                f,
                "journal replay diverged from the journaled history: {detail}"
            ),
        }
    }
}

impl std::error::Error for CdasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = CdasError::InvalidMeanAccuracy { mu: 0.4 };
        assert!(e.to_string().contains("0.4"));
        let e = CdasError::InvalidRequiredAccuracy { required: 1.2 };
        assert!(e.to_string().contains("1.2"));
        let e = CdasError::InvalidWorkerAccuracy { accuracy: -0.1 };
        assert!(e.to_string().contains("-0.1"));
        let e = CdasError::InvalidSamplingRate { rate: 0.0 };
        assert!(e.to_string().contains('0'));
        let e = CdasError::DegenerateDomain { size: 1 };
        assert!(e.to_string().contains('1'));
        let e = CdasError::PoolExhausted {
            needed: 9,
            available: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = CdasError::SchedulerStalled { ticks: 17 };
        assert!(e.to_string().contains("17"));
        let e = CdasError::EmptyFleet;
        assert!(e.to_string().contains("no workers"));
        let e = CdasError::EmptyJob {
            name: "thor".to_string(),
        };
        assert!(e.to_string().contains("thor"));
        let e = CdasError::InvalidShardCount {
            shards: 9,
            workers: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = CdasError::JournalIo {
            path: "/tmp/journal".to_string(),
            detail: "disk on fire".to_string(),
        };
        assert!(e.to_string().contains("/tmp/journal") && e.to_string().contains("disk on fire"));
        let e = CdasError::JournalCorrupt {
            segment: "segment-000001.cdj".to_string(),
            offset: 96,
            detail: "crc mismatch".to_string(),
        };
        assert!(e.to_string().contains("segment-000001.cdj"));
        assert!(e.to_string().contains("96") && e.to_string().contains("crc mismatch"));
        let e = CdasError::JournalEmpty;
        assert!(e.to_string().contains("no run to recover"));
        let e = CdasError::JournalDiverged {
            detail: "commit for job 3 seq 0 does not match".to_string(),
        };
        assert!(e.to_string().contains("job 3"));
        let e = CdasError::WorkerEstimateOverflow {
            required: 0.99,
            mu: 0.5000000001,
            upper: u64::MAX,
        };
        assert!(e.to_string().contains("0.99"));
        assert!(e.to_string().contains("workers"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&CdasError::EmptyObservation);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CdasError::EmptyObservation, CdasError::EmptyObservation);
        assert_ne!(
            CdasError::EmptyObservation,
            CdasError::NonPositive { what: "n" }
        );
    }
}
