//! The voting baselines used throughout the paper's evaluation: Half-Voting and
//! Majority-Voting (§5, "Half-Voting" / "Majority-Voting" models).
//!
//! Both ignore worker accuracy entirely, which is exactly why the probabilistic verifier
//! outperforms them (Figures 7 and 8); both can also fail to return any answer, which the
//! paper measures as the *no-answer ratio* (Figures 9 and 10).

use crate::error::{CdasError, Result};
use crate::types::{Label, Observation};
use crate::verification::{Verdict, Verifier};

/// Half-Voting: accept an answer iff **at least half** of the assigned workers returned it.
///
/// `assigned_workers` is the total number of workers `n` the HIT was sent to; an
/// observation may contain fewer votes (e.g. when used on a partial observation), in which
/// case the threshold still refers to `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfVoting {
    assigned_workers: usize,
}

impl HalfVoting {
    /// Create a Half-Voting verifier for a HIT assigned to `assigned_workers` workers.
    pub fn new(assigned_workers: usize) -> Self {
        HalfVoting { assigned_workers }
    }

    /// The acceptance threshold `⌈n/2⌉`.
    pub fn threshold(&self) -> usize {
        self.assigned_workers.div_ceil(2)
    }
}

impl Verifier for HalfVoting {
    fn decide(&self, observation: &Observation) -> Result<Verdict> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let tally = observation.tally();
        let threshold = self.threshold();
        let total = self.assigned_workers.max(observation.len());
        let best = tally
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(l, c)| (l.clone(), *c));
        match best {
            Some((label, count)) if count >= threshold => Ok(Verdict::Accepted {
                confidence: count as f64 / total as f64,
                label,
            }),
            _ => Ok(Verdict::NoAnswer),
        }
    }

    fn name(&self) -> &'static str {
        "Half-Voting"
    }
}

/// Majority-Voting: accept the answer with strictly more votes than every other answer;
/// a tie for the top count yields [`Verdict::NoAnswer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityVoting;

impl MajorityVoting {
    /// Create a Majority-Voting verifier.
    pub fn new() -> Self {
        MajorityVoting
    }
}

impl Verifier for MajorityVoting {
    fn decide(&self, observation: &Observation) -> Result<Verdict> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let tally = observation.tally();
        let mut entries: Vec<(&Label, usize)> = tally.iter().map(|(l, c)| (l, *c)).collect();
        entries.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let Some(&(top_label, top_count)) = entries.first() else {
            // Unreachable: a non-empty observation tallies at least one label.
            return Ok(Verdict::NoAnswer);
        };
        let tied = entries.get(1).is_some_and(|&(_, count)| count == top_count);
        if tied {
            return Ok(Verdict::NoAnswer);
        }
        Ok(Verdict::Accepted {
            label: top_label.clone(),
            confidence: top_count as f64 / observation.len() as f64,
        })
    }

    fn name(&self) -> &'static str {
        "Majority-Voting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Vote, WorkerId};

    fn obs(labels: &[&str]) -> Observation {
        Observation::from_votes(
            labels
                .iter()
                .enumerate()
                .map(|(i, l)| Vote::new(WorkerId(i as u64), Label::from(*l), 0.7))
                .collect(),
        )
    }

    #[test]
    fn half_voting_accepts_clear_majority() {
        let v = HalfVoting::new(5);
        let verdict = v
            .decide(&obs(&["pos", "pos", "pos", "neg", "neu"]))
            .unwrap();
        assert_eq!(verdict.label().unwrap().as_str(), "pos");
        if let Verdict::Accepted { confidence, .. } = verdict {
            assert!((confidence - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn half_voting_threshold_is_ceiling() {
        assert_eq!(HalfVoting::new(5).threshold(), 3);
        assert_eq!(HalfVoting::new(4).threshold(), 2);
        assert_eq!(HalfVoting::new(1).threshold(), 1);
    }

    #[test]
    fn half_voting_rejects_split_votes() {
        // 2/2/1 split over 5 workers: no answer reaches 3 votes.
        let v = HalfVoting::new(5);
        let verdict = v
            .decide(&obs(&["pos", "pos", "neg", "neg", "neu"]))
            .unwrap();
        assert_eq!(verdict, Verdict::NoAnswer);
    }

    #[test]
    fn half_voting_counts_against_assigned_not_received() {
        // 2 votes for "pos" out of 5 assigned workers: below the threshold of 3 even though
        // only 3 answers have arrived.
        let v = HalfVoting::new(5);
        let verdict = v.decide(&obs(&["pos", "pos", "neg"])).unwrap();
        assert_eq!(verdict, Verdict::NoAnswer);
    }

    #[test]
    fn majority_voting_accepts_plurality() {
        // 2/1/1: Majority-Voting accepts "pos" even though Half-Voting would not (n = 5).
        let m = MajorityVoting::new();
        let verdict = m.decide(&obs(&["pos", "pos", "neg", "neu"])).unwrap();
        assert_eq!(verdict.label().unwrap().as_str(), "pos");
        let h = HalfVoting::new(5);
        assert_eq!(
            h.decide(&obs(&["pos", "pos", "neg", "neu"])).unwrap(),
            Verdict::NoAnswer
        );
    }

    #[test]
    fn majority_voting_reports_tie_as_no_answer() {
        let m = MajorityVoting::new();
        let verdict = m
            .decide(&obs(&["pos", "pos", "neg", "neg", "neu"]))
            .unwrap();
        assert_eq!(verdict, Verdict::NoAnswer);
    }

    #[test]
    fn both_error_on_empty_observation() {
        assert!(HalfVoting::new(3).decide(&Observation::empty()).is_err());
        assert!(MajorityVoting::new().decide(&Observation::empty()).is_err());
    }

    #[test]
    fn table_4_voting_rows() {
        // Table 4 of the paper: the 3/1/1 split makes both voting models pick "pos".
        let observation = obs(&["pos", "pos", "neu", "neg", "pos"]);
        let h = HalfVoting::new(5).decide(&observation).unwrap();
        let m = MajorityVoting::new().decide(&observation).unwrap();
        assert_eq!(h.label().unwrap().as_str(), "pos");
        assert_eq!(m.label().unwrap().as_str(), "pos");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(HalfVoting::new(3).name(), "Half-Voting");
        assert_eq!(MajorityVoting::new().name(), "Majority-Voting");
    }
}
