//! The probability-based verification model (§4.1): accept the answer with the highest
//! Bayesian posterior given every worker's historical accuracy.

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};
use crate::types::{Label, Observation};
use crate::verification::confidence::answer_confidences;
use crate::verification::domain::DomainEstimator;
use crate::verification::{Verdict, Verifier};

/// Full output of a probabilistic verification: the accepted answer plus the complete
/// confidence ranking and the effective domain size that was used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationResult {
    ranking: Vec<(Label, f64)>,
    effective_domain: usize,
}

impl VerificationResult {
    /// The accepted (highest-confidence) answer.
    ///
    /// [`verify`](ProbabilisticVerifier::verify) rejects empty observations
    /// before constructing a result, so the ranking always has a head; a
    /// hand-rolled (e.g. deserialized) empty ranking yields the empty label
    /// rather than panicking.
    pub fn best(&self) -> &Label {
        self.ranking
            .first()
            .map(|(label, _)| label)
            .unwrap_or_else(|| Label::none())
    }

    /// Confidence of the accepted answer, `ρ(r̄) = P(r̄ | Ω)`.
    pub fn best_confidence(&self) -> f64 {
        self.ranking.first().map(|(_, p)| *p).unwrap_or(0.0)
    }

    /// The runner-up answer and its confidence, if at least two answers were observed.
    pub fn second(&self) -> Option<(&Label, f64)> {
        self.ranking.get(1).map(|(l, p)| (l, *p))
    }

    /// The full ranking, best first.
    pub fn ranking(&self) -> &[(Label, f64)] {
        &self.ranking
    }

    /// The effective answer-domain size `m` used in Equation 4.
    pub fn effective_domain(&self) -> usize {
        self.effective_domain
    }

    /// Confidence of an arbitrary label (zero if it was never voted for).
    pub fn confidence_of(&self, label: &Label) -> f64 {
        self.ranking
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

/// The probability-based verifier of §4.1.
///
/// The effective answer-domain size `m` is estimated per observation from the number of
/// distinct answers (Theorem 5) unless a fixed domain size is supplied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticVerifier {
    estimator: DomainEstimator,
    fixed_domain: Option<usize>,
}

impl Default for ProbabilisticVerifier {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbabilisticVerifier {
    /// Verifier that estimates `m` per observation with the default ε = 0.05.
    pub fn new() -> Self {
        ProbabilisticVerifier {
            estimator: DomainEstimator::new(),
            fixed_domain: None,
        }
    }

    /// Verifier with a fixed, known domain size `m = |R|` (e.g. 3 for sentiment labels).
    pub fn with_domain_size(m: usize) -> Self {
        ProbabilisticVerifier {
            estimator: DomainEstimator::with_declared_size(m),
            fixed_domain: Some(m.max(2)),
        }
    }

    /// Verifier that estimates `m` but caps it at the declared `|R|`.
    pub fn with_declared_domain(size: usize) -> Self {
        ProbabilisticVerifier {
            estimator: DomainEstimator::with_declared_size(size),
            fixed_domain: None,
        }
    }

    /// The effective `m` this verifier would use for the given observation.
    pub fn effective_domain(&self, observation: &Observation) -> usize {
        match self.fixed_domain {
            Some(m) => m,
            None => self.estimator.estimate(observation.distinct_answers()),
        }
    }

    /// Rank every observed answer by confidence (Equation 4).
    pub fn verify(&self, observation: &Observation) -> Result<VerificationResult> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let m = self.effective_domain(observation);
        if m < 2 {
            return Err(CdasError::DegenerateDomain { size: m });
        }
        let ranking = answer_confidences(observation, m);
        Ok(VerificationResult {
            ranking,
            effective_domain: m,
        })
    }
}

impl Verifier for ProbabilisticVerifier {
    fn decide(&self, observation: &Observation) -> Result<Verdict> {
        let result = self.verify(observation)?;
        Ok(Verdict::Accepted {
            label: result.best().clone(),
            confidence: result.best_confidence(),
        })
    }

    fn name(&self) -> &'static str {
        "Verification"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Vote, WorkerId};
    use crate::verification::voting::{HalfVoting, MajorityVoting};

    fn table4_observation() -> Observation {
        Observation::from_votes(vec![
            Vote::new(WorkerId(1), Label::from("pos"), 0.54),
            Vote::new(WorkerId(2), Label::from("pos"), 0.31),
            Vote::new(WorkerId(3), Label::from("neu"), 0.49),
            Vote::new(WorkerId(4), Label::from("neg"), 0.73),
            Vote::new(WorkerId(5), Label::from("pos"), 0.46),
        ])
    }

    #[test]
    fn reproduces_table_4() {
        // Voting strategies say "pos"; the probabilistic verifier flips to "neg".
        let observation = table4_observation();
        let voting = MajorityVoting::new().decide(&observation).unwrap();
        assert_eq!(voting.label().unwrap().as_str(), "pos");
        let half = HalfVoting::new(5).decide(&observation).unwrap();
        assert_eq!(half.label().unwrap().as_str(), "pos");

        let verifier = ProbabilisticVerifier::with_domain_size(3);
        let result = verifier.verify(&observation).unwrap();
        assert_eq!(result.best().as_str(), "neg");
        assert!((result.best_confidence() - 0.495).abs() < 0.01);
        assert_eq!(result.effective_domain(), 3);
        assert_eq!(result.ranking().len(), 3);
        assert!(result.confidence_of(&Label::from("pos")) < result.best_confidence());
        assert_eq!(result.confidence_of(&Label::from("unseen")), 0.0);
        let (second, p2) = result.second().unwrap();
        assert_eq!(second.as_str(), "pos");
        assert!(p2 < result.best_confidence());
    }

    #[test]
    fn verifier_trait_reports_best_answer() {
        let observation = table4_observation();
        let verifier = ProbabilisticVerifier::with_domain_size(3);
        let verdict = verifier.decide(&observation).unwrap();
        assert_eq!(verdict.label().unwrap().as_str(), "neg");
        assert_eq!(verifier.name(), "Verification");
    }

    #[test]
    fn estimated_domain_used_when_not_fixed() {
        let observation = table4_observation();
        let auto = ProbabilisticVerifier::new();
        let m = auto.effective_domain(&observation);
        assert!(m >= 3, "estimated domain must cover the 3 observed answers");
        let result = auto.verify(&observation).unwrap();
        assert_eq!(result.effective_domain(), m);
    }

    #[test]
    fn declared_domain_caps_estimate() {
        let observation = table4_observation();
        let capped = ProbabilisticVerifier::with_declared_domain(3);
        assert_eq!(capped.effective_domain(&observation), 3);
    }

    #[test]
    fn empty_observation_is_an_error() {
        let verifier = ProbabilisticVerifier::new();
        assert_eq!(
            verifier.verify(&Observation::empty()).unwrap_err(),
            CdasError::EmptyObservation
        );
    }

    #[test]
    fn unanimous_high_accuracy_vote_is_near_certain() {
        let observation = Observation::from_votes(
            (0..9)
                .map(|i| Vote::new(WorkerId(i), Label::from("yes"), 0.9))
                .collect(),
        );
        let verifier = ProbabilisticVerifier::with_domain_size(2);
        let result = verifier.verify(&observation).unwrap();
        assert_eq!(result.best().as_str(), "yes");
        assert!(result.best_confidence() > 0.999);
    }

    #[test]
    fn low_accuracy_majority_loses_to_high_accuracy_minority() {
        // Three 0.52-accuracy workers versus one 0.95-accuracy worker.
        let observation = Observation::from_votes(vec![
            Vote::new(WorkerId(1), Label::from("a"), 0.52),
            Vote::new(WorkerId(2), Label::from("a"), 0.52),
            Vote::new(WorkerId(3), Label::from("a"), 0.52),
            Vote::new(WorkerId(4), Label::from("b"), 0.95),
        ]);
        let verifier = ProbabilisticVerifier::with_domain_size(3);
        let result = verifier.verify(&observation).unwrap();
        assert_eq!(result.best().as_str(), "b");
    }
}
