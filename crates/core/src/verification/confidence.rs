//! Worker confidence and answer confidence (Definitions 2 and 3, Equation 4).
//!
//! The Bayesian derivation of §4.1 turns the posterior probability of an answer into a
//! weighted vote where worker `u_j` carries weight `e^{c_j}` with
//! `c_j = ln((m−1) a_j / (1 − a_j))`. Answer confidences are computed with a log-sum-exp
//! so that HITs with dozens of high-confidence workers do not overflow.

use std::collections::BTreeMap;

use crate::math::{clamp_probability, log_sum_exp};
use crate::types::{Label, Observation};

/// Sort `(label, value)` pairs by descending value with a **total** comparator, breaking
/// ties by label order.
///
/// Confidence values are ordinarily finite, but a degenerate accuracy (NaN, or an exact
/// 0/1 that slips past clamping upstream) poisons sums and posteriors into NaN; a
/// `partial_cmp().unwrap()` here used to panic the online path mid-HIT. NaN values order
/// *last*: a label whose evidence is NaN must never be declared the leader.
pub(crate) fn sort_by_confidence_desc(ranked: &mut [(Label, f64)]) {
    ranked.sort_by(|a, b| desc_nan_last(a.1, b.1).then_with(|| a.0.cmp(&b.0)));
}

/// Total descending order for confidence-like values, NaN last.
pub(crate) fn desc_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        _ => b.total_cmp(&a),
    }
}

/// The worker confidence `c_j = ln((m−1) a_j / (1 − a_j))` of Definition 2.
///
/// `m` is the effective answer-domain size; `accuracy` is clamped into `(0, 1)` so the
/// result is always finite.
pub fn worker_confidence(accuracy: f64, m: usize) -> f64 {
    let a = clamp_probability(accuracy);
    ((m.max(2) - 1) as f64).ln() + (a / (1.0 - a)).ln()
}

/// Per-answer summed confidences `S_r = Σ_{f(u_j)=r} c_j` for every label observed in `Ω`.
///
/// Labels never voted for are *not* listed; Equation 4 treats them as carrying a summed
/// confidence of zero (an empty product), which [`answer_confidences`] accounts for through
/// the `m − k` term of the denominator.
pub fn summed_confidences(observation: &Observation, m: usize) -> BTreeMap<Label, f64> {
    let mut sums: BTreeMap<Label, f64> = BTreeMap::new();
    for vote in observation.votes() {
        *sums.entry(vote.label.clone()).or_insert(0.0) += worker_confidence(vote.accuracy(), m);
    }
    sums
}

/// Answer confidences `ρ(r) = P(r | Ω)` for every observed label (Equation 4), normalised
/// over the *full* answer domain of size `m`: the `m − k` never-voted answers each
/// contribute `e^0 = 1` to the denominator.
///
/// The returned pairs are sorted by descending confidence (ties broken by label order) and
/// the confidences of the observed labels sum to at most 1 — the remainder is the
/// probability mass of the unobserved answers.
pub fn answer_confidences(observation: &Observation, m: usize) -> Vec<(Label, f64)> {
    let sums = summed_confidences(observation, m);
    ranked_from_sums(&sums, m)
}

/// Same as [`answer_confidences`] but starting from precomputed summed confidences; used by
/// the online processor, which maintains the sums incrementally.
pub fn ranked_from_sums(sums: &BTreeMap<Label, f64>, m: usize) -> Vec<(Label, f64)> {
    if sums.is_empty() {
        return Vec::new();
    }
    let k = sums.len();
    let m = m.max(k).max(2);
    // Denominator in log space: LSE over observed sums plus (m − k) unit terms.
    let mut terms: Vec<f64> = sums.values().copied().collect();
    if m > k {
        terms.push(((m - k) as f64).ln());
    }
    let log_denominator = log_sum_exp(&terms);
    let mut ranked: Vec<(Label, f64)> = sums
        .iter()
        .map(|(l, &s)| (l.clone(), (s - log_denominator).exp()))
        .collect();
    sort_by_confidence_desc(&mut ranked);
    ranked
}

/// Brute-force evaluation of Equation 3 (products of probabilities, no log-space rewrite).
///
/// Only used by tests to validate [`answer_confidences`]; it underflows for large
/// observations, which is precisely why the production path works with log-odds.
pub fn answer_confidences_bruteforce(observation: &Observation, m: usize) -> Vec<(Label, f64)> {
    let m = m.max(observation.distinct_answers()).max(2);
    let labels: Vec<Label> = observation.tally().keys().cloned().collect();
    let score = |candidate: &Label| -> f64 {
        observation
            .votes()
            .iter()
            .map(|v| {
                let a = clamp_probability(v.accuracy());
                if &v.label == candidate {
                    a
                } else {
                    (1.0 - a) / (m as f64 - 1.0)
                }
            })
            .product()
    };
    let observed: Vec<(Label, f64)> = labels.iter().map(|l| (l.clone(), score(l))).collect();
    // Unobserved answers: every vote is "wrong", i.e. the same product with no match.
    let unobserved_score: f64 = observation
        .votes()
        .iter()
        .map(|v| (1.0 - clamp_probability(v.accuracy())) / (m as f64 - 1.0))
        .product();
    let denominator: f64 = observed.iter().map(|(_, s)| *s).sum::<f64>()
        + (m - labels.len()) as f64 * unobserved_score;
    let mut ranked: Vec<(Label, f64)> = observed
        .into_iter()
        .map(|(l, s)| (l, s / denominator))
        .collect();
    sort_by_confidence_desc(&mut ranked);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Vote, WorkerId};

    fn obs(entries: &[(&str, f64)]) -> Observation {
        Observation::from_votes(
            entries
                .iter()
                .enumerate()
                .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(*l), *a))
                .collect(),
        )
    }

    #[test]
    fn worker_confidence_matches_definition() {
        let c = worker_confidence(0.8, 3);
        assert!((c - (2.0f64.ln() + (0.8f64 / 0.2).ln())).abs() < 1e-12);
        // Higher accuracy ⇒ higher confidence.
        assert!(worker_confidence(0.9, 3) > worker_confidence(0.6, 3));
        // A coin-flip worker in a binary domain has zero confidence.
        assert!(worker_confidence(0.5, 2).abs() < 1e-9);
        // Below-random workers get negative confidence.
        assert!(worker_confidence(0.3, 2) < 0.0);
    }

    #[test]
    fn confidences_match_bruteforce_bayes() {
        let observation = obs(&[
            ("pos", 0.54),
            ("pos", 0.31),
            ("neu", 0.49),
            ("neg", 0.73),
            ("pos", 0.46),
        ]);
        for &m in &[3usize, 5, 10] {
            let fast = answer_confidences(&observation, m);
            let slow = answer_confidences_bruteforce(&observation, m);
            assert_eq!(fast.len(), slow.len());
            for ((l1, p1), (l2, p2)) in fast.iter().zip(slow.iter()) {
                assert_eq!(l1, l2);
                assert!((p1 - p2).abs() < 1e-9, "m={m}: {p1} vs {p2}");
            }
        }
    }

    #[test]
    fn table_4_worked_example() {
        // Table 3/4 of the paper: the verification model must flip the result to "neg"
        // with confidences close to (pos 0.329, neu 0.176, neg 0.495).
        let observation = obs(&[
            ("pos", 0.54),
            ("pos", 0.31),
            ("neu", 0.49),
            ("neg", 0.73),
            ("pos", 0.46),
        ]);
        let ranked = answer_confidences(&observation, 3);
        assert_eq!(ranked[0].0.as_str(), "neg");
        let lookup = |name: &str| {
            ranked
                .iter()
                .find(|(l, _)| l.as_str() == name)
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert!(
            (lookup("neg") - 0.495).abs() < 0.01,
            "neg={}",
            lookup("neg")
        );
        assert!(
            (lookup("pos") - 0.329).abs() < 0.01,
            "pos={}",
            lookup("pos")
        );
        assert!(
            (lookup("neu") - 0.176).abs() < 0.01,
            "neu={}",
            lookup("neu")
        );
    }

    #[test]
    fn equal_accuracy_reduces_to_plain_voting() {
        // With identical accuracies the ranking must coincide with the vote counts.
        let observation = obs(&[("a", 0.7), ("a", 0.7), ("b", 0.7), ("c", 0.7), ("a", 0.7)]);
        let ranked = answer_confidences(&observation, 3);
        assert_eq!(ranked[0].0.as_str(), "a");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn probabilities_are_normalised_within_domain() {
        let observation = obs(&[("a", 0.9), ("b", 0.6), ("c", 0.55)]);
        for &m in &[3usize, 4, 8] {
            let ranked = answer_confidences(&observation, m);
            let total: f64 = ranked.iter().map(|(_, p)| p).sum();
            if m == 3 {
                assert!((total - 1.0).abs() < 1e-9);
            } else {
                // Some probability mass belongs to never-voted answers.
                assert!(total < 1.0);
                assert!(total > 0.5);
            }
            for (_, p) in &ranked {
                assert!(*p > 0.0 && *p < 1.0);
            }
        }
    }

    #[test]
    fn larger_domain_dilutes_wrong_answers_less() {
        // With a huge m, a single accurate worker's answer should dominate less mass being
        // spread, but the argmax must not change.
        let observation = obs(&[("a", 0.9), ("b", 0.6)]);
        let small = answer_confidences(&observation, 2);
        let large = answer_confidences(&observation, 50);
        assert_eq!(small[0].0.as_str(), "a");
        assert_eq!(large[0].0.as_str(), "a");
    }

    #[test]
    fn many_confident_workers_do_not_overflow() {
        let votes: Vec<Vote> = (0..200)
            .map(|i| Vote::new(WorkerId(i), Label::from("x"), 0.999))
            .collect();
        let observation = Observation::from_votes(votes);
        let ranked = answer_confidences(&observation, 3);
        assert_eq!(ranked[0].0.as_str(), "x");
        assert!(ranked[0].1 > 0.999);
        assert!(ranked[0].1.is_finite());
    }

    #[test]
    fn empty_observation_yields_empty_ranking() {
        assert!(answer_confidences(&Observation::empty(), 3).is_empty());
        assert!(ranked_from_sums(&BTreeMap::new(), 3).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::{Vote, WorkerId};
    use proptest::prelude::*;

    fn arbitrary_observation() -> impl Strategy<Value = Observation> {
        let label = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
        prop::collection::vec((label, 0.05f64..0.95), 1..25).prop_map(|entries| {
            Observation::from_votes(
                entries
                    .into_iter()
                    .enumerate()
                    .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(l), a))
                    .collect(),
            )
        })
    }

    proptest! {
        /// Log-space computation agrees with the brute-force Bayes formula.
        #[test]
        fn matches_bruteforce(observation in arbitrary_observation(), m in 4usize..12) {
            let fast = answer_confidences(&observation, m);
            let slow = answer_confidences_bruteforce(&observation, m);
            prop_assert_eq!(fast.len(), slow.len());
            for ((l1, p1), (l2, p2)) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(l1, l2);
                prop_assert!((p1 - p2).abs() < 1e-7);
            }
        }

        /// Confidences are valid probabilities and the observed ones never exceed unit mass.
        #[test]
        fn confidences_are_probabilities(observation in arbitrary_observation(), m in 4usize..12) {
            let ranked = answer_confidences(&observation, m);
            let total: f64 = ranked.iter().map(|(_, p)| p).sum();
            prop_assert!(total <= 1.0 + 1e-9);
            for (_, p) in ranked {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        /// The ranking is sorted by descending confidence.
        #[test]
        fn ranking_is_sorted(observation in arbitrary_observation(), m in 4usize..12) {
            let ranked = answer_confidences(&observation, m);
            for w in ranked.windows(2) {
                prop_assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }
}
