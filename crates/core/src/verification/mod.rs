//! The **verification model** (§4 of the paper): decide which of the conflicting worker
//! answers to accept.
//!
//! Three strategies are implemented:
//!
//! * [`voting::HalfVoting`] — accept an answer returned by at least `⌈n/2⌉` workers
//!   (the CrowdDB-style baseline),
//! * [`voting::MajorityVoting`] — accept the strictly most-voted answer,
//! * [`probabilistic::ProbabilisticVerifier`] — the paper's contribution: a Bayesian
//!   aggregation that weights every worker by the log-odds of their historical accuracy
//!   (Definitions 2–3, Equation 4), with the effective answer-domain size `m` estimated
//!   from the observed distinct answers (Theorem 5, [`domain`]).
//!
//! The voting strategies may fail to produce an answer (ties, no majority); the
//! probabilistic verifier always ranks every observed answer by confidence.

pub mod confidence;
pub mod domain;
pub mod probabilistic;
pub mod voting;

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::types::{Label, Observation};

/// Outcome of a verification strategy on one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// An answer was accepted.
    Accepted {
        /// The accepted label.
        label: Label,
        /// The strategy's confidence in the label (vote fraction for the voting baselines,
        /// posterior probability for the probabilistic verifier).
        confidence: f64,
    },
    /// The strategy could not single out an answer (tie / no majority). The paper reports
    /// this as the *no-answer ratio* in Figures 9 and 10.
    NoAnswer,
}

impl Verdict {
    /// The accepted label, if any.
    pub fn label(&self) -> Option<&Label> {
        match self {
            Verdict::Accepted { label, .. } => Some(label),
            Verdict::NoAnswer => None,
        }
    }

    /// Whether the strategy produced an answer.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted { .. })
    }
}

/// Common interface of every answer-verification strategy.
pub trait Verifier {
    /// Decide which answer (if any) to accept for the given observation.
    fn decide(&self, observation: &Observation) -> Result<Verdict>;

    /// Human-readable name used by the experiment harness when printing result tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let v = Verdict::Accepted {
            label: Label::from("pos"),
            confidence: 0.8,
        };
        assert!(v.is_accepted());
        assert_eq!(v.label().unwrap().as_str(), "pos");
        let n = Verdict::NoAnswer;
        assert!(!n.is_accepted());
        assert!(n.label().is_none());
    }
}
