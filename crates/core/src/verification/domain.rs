//! Estimation of the effective answer-domain size `m` (Lemmas 1–2, Theorem 5).
//!
//! Equation 4 needs the number of possible answers `m`. Using the declared domain size
//! `|R|` is wasteful when the answer distribution is skewed (the paper's example: a 0–100
//! score where most values are never chosen) because the never-chosen answers dilute the
//! weight of the correct one. The paper instead asks: *given that the `n` workers produced
//! only `k` distinct answers, how large can `m` plausibly be?* Requiring the probability of
//! observing only `k` distinct values, `C(m,k)/m^k`, to exceed a significance level
//! `ε = 0.05` (Fisher's exact test convention) yields two lower bounds on `m`, of which the
//! paper takes the larger (Theorem 5).

use serde::{Deserialize, Serialize};

use crate::math::harmonic;

/// Significance level used by the paper (Fisher's exact test convention).
pub const DEFAULT_EPSILON: f64 = 0.05;

/// Lemma 1: `m > (k−1) / (H_{k−1} − (k−1)(εk)^{1/(k−1)})`.
///
/// Returns `None` when the bound is undefined or vacuous (denominator ≤ 0, or `k < 2`).
pub fn lemma1_lower_bound(k: usize, epsilon: f64) -> Option<f64> {
    if k < 2 {
        return None;
    }
    let kf = k as f64;
    let denominator = harmonic(k as u64 - 1) - (kf - 1.0) * (epsilon * kf).powf(1.0 / (kf - 1.0));
    if denominator <= 0.0 {
        return None;
    }
    Some((kf - 1.0) / denominator)
}

/// Lemma 2 (the tighter bound for large `k`): `m > (k−1) / (1 − k·ε^{1/k})`.
///
/// Returns `None` when the bound is undefined or vacuous (denominator ≤ 0, or `k < 2`).
pub fn lemma2_lower_bound(k: usize, epsilon: f64) -> Option<f64> {
    if k < 2 {
        return None;
    }
    let kf = k as f64;
    let denominator = 1.0 - kf * epsilon.powf(1.0 / kf);
    if denominator <= 0.0 {
        return None;
    }
    Some((kf - 1.0) / denominator)
}

/// Configuration of the domain-size estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainEstimator {
    /// Significance level ε of the rarity test (default 0.05).
    pub epsilon: f64,
    /// The declared domain size `|R|`, used as an upper cap when known.
    pub declared_size: Option<usize>,
}

impl Default for DomainEstimator {
    fn default() -> Self {
        DomainEstimator {
            epsilon: DEFAULT_EPSILON,
            declared_size: None,
        }
    }
}

impl DomainEstimator {
    /// Estimator with the paper's default ε and no declared-domain cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimator capped at a declared domain size `|R|`.
    pub fn with_declared_size(size: usize) -> Self {
        DomainEstimator {
            epsilon: DEFAULT_EPSILON,
            declared_size: Some(size),
        }
    }

    /// Estimate the effective `m` from the number of distinct observed answers `k`
    /// (Theorem 5): the smallest integer exceeding both lower bounds, never smaller than
    /// `max(k, 2)` and never larger than the declared `|R|`.
    pub fn estimate(&self, distinct_answers: usize) -> usize {
        let k = distinct_answers;
        let floor = k.max(2);
        let bound = [
            lemma1_lower_bound(k, self.epsilon),
            lemma2_lower_bound(k, self.epsilon),
        ]
        .into_iter()
        .flatten()
        .fold(0.0f64, f64::max);
        // `m` must strictly exceed the bound.
        let mut m = floor.max(bound.floor() as usize + 1);
        if let Some(cap) = self.declared_size {
            m = m.min(cap.max(2)).max(k.min(cap.max(2)));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct evaluation of the rarity probability C(m, k) / m^k used by the lemmas.
    fn rarity(m: usize, k: usize) -> f64 {
        if k > m {
            return 0.0;
        }
        let mut p = 1.0f64;
        for i in 0..k {
            p *= (m - i) as f64 / m as f64;
        }
        // divide by k! to finish C(m,k)/m^k = m(m-1)..(m-k+1) / (k! m^k)
        for i in 1..=k {
            p /= i as f64;
        }
        p
    }

    #[test]
    fn lemma_bounds_exist_for_moderate_k() {
        for k in 2..20 {
            let l2 = lemma2_lower_bound(k, 0.05);
            // Lemma 2's denominator 1 − k ε^{1/k} becomes negative for k ≥ 5 at ε = 0.05,
            // so it only applies for small k; Lemma 1 behaves similarly. The estimator
            // must cope with both being absent.
            if let Some(b) = l2 {
                assert!(b > 0.0);
            }
            let l1 = lemma1_lower_bound(k, 0.05);
            if let Some(b) = l1 {
                assert!(b > 0.0);
            }
        }
    }

    #[test]
    fn small_k_has_no_bounds() {
        assert_eq!(lemma1_lower_bound(0, 0.05), None);
        assert_eq!(lemma1_lower_bound(1, 0.05), None);
        assert_eq!(lemma2_lower_bound(1, 0.05), None);
    }

    #[test]
    fn estimate_is_at_least_observed_and_at_least_two() {
        let est = DomainEstimator::new();
        assert_eq!(est.estimate(0), 2);
        assert_eq!(est.estimate(1), 2);
        for k in 2..30 {
            assert!(est.estimate(k) >= k, "estimate below observed k={k}");
        }
    }

    #[test]
    fn estimate_respects_declared_cap() {
        let est = DomainEstimator::with_declared_size(3);
        for k in 0..6 {
            assert!(est.estimate(k) <= 3);
        }
        assert_eq!(est.estimate(2), 3.min(est.estimate(2)).max(2));
    }

    #[test]
    fn estimate_is_a_valid_lower_bound() {
        // Theorem 5 gives a *lower bound* on every m that makes the observation non-rare
        // (rarity C(m,k)/m^k > ε): whenever such an m exists at all, the smallest one must
        // be no smaller than the estimate. For larger k the rarity is capped by 1/k! < ε,
        // the lemma denominators turn negative and the estimator falls back to m = k.
        let est = DomainEstimator::new();
        for k in 2..8usize {
            let estimate = est.estimate(k);
            match (k..2000).find(|&m| rarity(m, k) > est.epsilon) {
                Some(smallest_valid) => assert!(
                    smallest_valid >= estimate || rarity(estimate, k) > est.epsilon,
                    "k={k}: smallest valid m {smallest_valid} is below the estimate {estimate}"
                ),
                // When no m satisfies the exact rarity test, the lower bound is vacuously
                // valid (the lemmas relax the constraint via AM-GM, so they may still
                // produce a finite value); nothing further to check.
                None => assert!(estimate >= k),
            }
        }
    }

    #[test]
    fn estimate_with_declared_size_for_skewed_scores() {
        // The paper's motivating example: a 0–100 score domain where only 4 distinct
        // scores are observed. The effective m must be far below 101.
        let est = DomainEstimator::with_declared_size(101);
        let m = est.estimate(4);
        assert!(
            m < 60,
            "effective domain {m} should prune a large part of the 101 scores"
        );
        assert!(m >= 4);
    }

    #[test]
    fn epsilon_controls_looseness() {
        // The rarity C(m,k)/m^k grows with m, so requiring it to exceed a *larger* ε forces
        // a larger m — as long as the lemma bounds are defined for both ε values. Once the
        // larger ε makes the bound vacuous (denominator ≤ 0), the estimator falls back to
        // m = k, so the comparison only applies where both bounds exist.
        let strict = DomainEstimator {
            epsilon: 0.01,
            declared_size: None,
        };
        let loose = DomainEstimator {
            epsilon: 0.2,
            declared_size: None,
        };
        for k in 2..6usize {
            let both_defined = lemma1_lower_bound(k, loose.epsilon).is_some()
                && lemma1_lower_bound(k, strict.epsilon).is_some();
            if both_defined {
                assert!(
                    loose.estimate(k) >= strict.estimate(k),
                    "k={k}: loose {} < strict {}",
                    loose.estimate(k),
                    strict.estimate(k)
                );
            }
        }
        // And the bounds themselves are monotone in ε wherever defined.
        if let (Some(l), Some(s)) = (lemma1_lower_bound(2, 0.2), lemma1_lower_bound(2, 0.01)) {
            assert!(l >= s);
        }
    }
}
