//! A real in-tree binary codec for the durable journal.
//!
//! The workspace's `serde` shim is deliberately a no-op (see `shims/README.md`), so the
//! write-ahead journal cannot lean on `Serialize`/`Deserialize` for its on-disk format.
//! This module is the replacement for that path: a small, explicit, little-endian binary
//! codec with no reflection and no external dependencies. Every type that ends up inside
//! a journal record implements [`BinCodec`] by hand in its owning crate, which keeps the
//! wire format reviewable and keeps the real `serde` swap-back (re-enabling the derives)
//! orthogonal to durability.
//!
//! Format conventions:
//!
//! - integers are little-endian; `usize` is written as `u64` and checked on decode;
//! - `f64` is written as its IEEE-754 bit pattern (`to_bits`), so round-trips are
//!   bit-exact — the property the fleet's determinism checks rely on;
//! - `Vec<T>`/`String` are a `u64` length followed by the elements/UTF-8 bytes;
//! - `Option<T>` is a presence byte (`0`/`1`) followed by the value;
//! - enums are a one-byte tag followed by the variant's fields.

use std::ops::Range;

use crate::accuracy::AccuracyRegistry;
use crate::economics::CostModel;
use crate::online::TerminationStrategy;
use crate::types::{AnswerDomain, HitId, Label, QuestionId, WorkerId};
use crate::verification::Verdict;

/// Decoding failure: truncated input, an unknown enum tag, or a value that fails the
/// type's own invariants (e.g. a length that does not fit in `usize`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of what failed to decode.
    pub detail: String,
}

impl CodecError {
    /// Build an error with the given description.
    pub fn new(detail: impl Into<String>) -> Self {
        CodecError {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.detail)
    }
}

impl std::error::Error for CodecError {}

/// Specialized `Result` for decoding.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Hand-written binary encoding used by the on-disk journal.
///
/// `decode` consumes from the front of `input`, leaving any trailing bytes for the
/// caller — records concatenate fields by concatenating encodings.
pub trait BinCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value from the front of `input`, advancing it past the consumed bytes.
    fn decode(input: &mut &[u8]) -> CodecResult<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a buffer, requiring that every byte is consumed.
    fn from_bytes(mut bytes: &[u8]) -> CodecResult<Self> {
        let value = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(CodecError::new(format!(
                "{} trailing bytes after value",
                bytes.len()
            )));
        }
        Ok(value)
    }
}

/// Split `n` bytes off the front of `input`, or fail if fewer remain.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> CodecResult<&'a [u8]> {
    if input.len() < n {
        return Err(CodecError::new(format!(
            "truncated input: wanted {n} bytes, {} remain",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Split exactly `N` bytes off the front of `input` as a fixed-size array,
/// or fail if fewer remain. Infallible once `take` succeeds, so fixed-width
/// integer decodes need no panicking `try_into().expect(..)` conversion.
pub fn take_array<const N: usize>(input: &mut &[u8]) -> CodecResult<[u8; N]> {
    let head = take(input, N)?;
    let mut array = [0u8; N];
    array.copy_from_slice(head);
    Ok(array)
}

impl BinCodec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(take(input, 1)?[0])
    }
}

impl BinCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(u32::from_le_bytes(take_array(input)?))
    }
}

impl BinCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(u64::from_le_bytes(take_array(input)?))
    }
}

impl BinCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let wide = u64::decode(input)?;
        usize::try_from(wide)
            .map_err(|_| CodecError::new(format!("u64 value {wide} does not fit in usize")))
    }
}

impl BinCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid bool byte {other}"))),
        }
    }
}

impl BinCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl BinCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let len = usize::decode(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(format!("invalid UTF-8 string: {e}")))
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let len = usize::decode(input)?;
        // Guard against a corrupt length causing an absurd pre-allocation: each element
        // takes at least one byte, so `len` can never exceed the remaining input.
        if len > input.len() {
            return Err(CodecError::new(format!(
                "vector length {len} exceeds remaining input {}",
                input.len()
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
}

impl<T: BinCodec> BinCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(CodecError::new(format!("invalid Option tag {other}"))),
        }
    }
}

impl<A: BinCodec, B: BinCodec> BinCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: BinCodec, B: BinCodec, C: BinCodec> BinCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl BinCodec for Range<usize> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let start = usize::decode(input)?;
        let end = usize::decode(input)?;
        Ok(start..end)
    }
}

impl BinCodec for WorkerId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(WorkerId(u64::decode(input)?))
    }
}

impl BinCodec for QuestionId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(QuestionId(u64::decode(input)?))
    }
}

impl BinCodec for HitId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(HitId(u64::decode(input)?))
    }
}

impl BinCodec for Label {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().to_string().encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(Label::new(String::decode(input)?))
    }
}

impl BinCodec for AnswerDomain {
    fn encode(&self, out: &mut Vec<u8>) {
        let labels: Vec<Label> = self.labels().cloned().collect();
        labels.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(AnswerDomain::new(Vec::<Label>::decode(input)?))
    }
}

impl BinCodec for Verdict {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Verdict::Accepted { label, confidence } => {
                out.push(0);
                label.encode(out);
                confidence.encode(out);
            }
            Verdict::NoAnswer => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(Verdict::Accepted {
                label: Label::decode(input)?,
                confidence: f64::decode(input)?,
            }),
            1 => Ok(Verdict::NoAnswer),
            other => Err(CodecError::new(format!("invalid Verdict tag {other}"))),
        }
    }
}

impl BinCodec for CostModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker_fee.encode(out);
        self.platform_fee.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(CostModel {
            worker_fee: f64::decode(input)?,
            platform_fee: f64::decode(input)?,
        })
    }
}

impl BinCodec for TerminationStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            TerminationStrategy::MinMax => 0,
            TerminationStrategy::MinExp => 1,
            TerminationStrategy::ExpMax => 2,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(TerminationStrategy::MinMax),
            1 => Ok(TerminationStrategy::MinExp),
            2 => Ok(TerminationStrategy::ExpMax),
            other => Err(CodecError::new(format!(
                "invalid TerminationStrategy tag {other}"
            ))),
        }
    }
}

impl BinCodec for AccuracyRegistry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.default_accuracy().encode(out);
        let entries: Vec<(WorkerId, f64, usize)> = self
            .iter()
            .map(|(worker, estimate)| (*worker, estimate.accuracy, estimate.samples))
            .collect();
        entries.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let default_accuracy = Option::<f64>::decode(input)?;
        let mut registry = AccuracyRegistry::new();
        if let Some(default) = default_accuracy {
            registry = registry.with_default_accuracy(default);
        }
        for (worker, accuracy, samples) in Vec::<(WorkerId, f64, usize)>::decode(input)? {
            registry.set(worker, accuracy, samples);
        }
        Ok(registry)
    }
}

/// FNV-1a hash of a byte string; the journal uses it to fingerprint snapshotted records
/// without keeping their full payloads around.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let back = T::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(std::f64::consts::PI);
        round_trip(-0.0f64);
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Option::<u32>::None);
        round_trip(Some(9u32));
        round_trip((7usize, 0.25f64));
        round_trip(3usize..9);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e-300, -1e300] {
            let bytes = value.to_bytes();
            let back = f64::from_bytes(&bytes).expect("decodes");
            assert_eq!(back.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(WorkerId(17));
        round_trip(QuestionId(3));
        round_trip(HitId(u64::MAX));
        round_trip(Label::new("positive"));
        round_trip(AnswerDomain::from_strs(&["a", "b", "c"]));
        round_trip(Verdict::NoAnswer);
        round_trip(Verdict::Accepted {
            label: Label::new("b"),
            confidence: 0.97,
        });
        round_trip(CostModel::default());
        round_trip(TerminationStrategy::ExpMax);
        round_trip(TerminationStrategy::MinMax);
        round_trip(TerminationStrategy::MinExp);
    }

    #[test]
    fn registry_round_trips_with_default_and_entries() {
        let mut registry = AccuracyRegistry::new().with_default_accuracy(0.7);
        registry.set(WorkerId(1), 0.9, 4);
        registry.set(WorkerId(42), 0.55, 0);
        round_trip(registry);
        round_trip(AccuracyRegistry::new());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 0xdead_beef_dead_beefu64.to_bytes();
        assert!(u64::from_bytes(&bytes[..7]).is_err());
        assert!(String::from_bytes(&[8, 0, 0, 0, 0, 0, 0, 0, b'x']).is_err());
        assert!(Vec::<u64>::from_bytes(&u64::MAX.to_bytes()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_tags_are_errors() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[3]).is_err());
        assert!(Verdict::from_bytes(&[9]).is_err());
        assert!(TerminationStrategy::from_bytes(&[3]).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Reference values for the 64-bit FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
