//! Result presentation (§4.3): turn per-question verdicts into the aggregate view the
//! user sees — per-answer percentages and the most frequent reason keywords — updated
//! continuously while answers stream in (Figure 4).
//!
//! For a list of questions `t_1 … t_N`, the score of answer `r` on question `t_i` is
//!
//! ```text
//! h_{t_i}(r) = 1        if r was accepted for t_i
//!            = 0        if another answer was accepted
//!            = ρ_{t_i}(r)  if no answer has been accepted yet
//! ```
//!
//! and the reported percentage of `r` is `(1/N) Σ_i h_{t_i}(r)`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::types::Label;

/// The presentation-relevant state of one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuestionOutcome {
    /// An answer was accepted (verification finished or early-terminated).
    Accepted {
        /// The accepted label.
        label: Label,
    },
    /// No answer accepted yet; carry the current confidence of every observed answer.
    Pending {
        /// Current confidences `ρ_{t_i}(r)` per observed label.
        confidences: Vec<(Label, f64)>,
    },
}

impl QuestionOutcome {
    /// The score `h_{t_i}(r)` this question contributes to answer `r`.
    pub fn score(&self, label: &Label) -> f64 {
        match self {
            QuestionOutcome::Accepted { label: accepted } => {
                if accepted == label {
                    1.0
                } else {
                    0.0
                }
            }
            QuestionOutcome::Pending { confidences } => confidences
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, p)| *p)
                .unwrap_or(0.0),
        }
    }

    /// Whether the question has an accepted answer.
    pub fn is_accepted(&self) -> bool {
        matches!(self, QuestionOutcome::Accepted { .. })
    }
}

/// One row of the presented result: an answer, its percentage, and its reasons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerSummary {
    /// The answer label.
    pub label: Label,
    /// Percentage of questions supporting the answer, in `[0, 1]`.
    pub percentage: f64,
    /// The most frequent reason keywords provided by workers who chose this answer,
    /// most frequent first.
    pub reasons: Vec<String>,
}

/// Aggregator producing the Figure-4-style live result view.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResultPresenter {
    outcomes: Vec<QuestionOutcome>,
    /// keyword → (label → count)
    keyword_counts: BTreeMap<Label, BTreeMap<String, usize>>,
    /// Maximum number of reason keywords reported per answer.
    max_reasons: usize,
}

impl ResultPresenter {
    /// A presenter reporting at most 5 reason keywords per answer (as in Figure 4).
    pub fn new() -> Self {
        ResultPresenter {
            outcomes: Vec::new(),
            keyword_counts: BTreeMap::new(),
            max_reasons: 5,
        }
    }

    /// Change the number of reason keywords reported per answer.
    pub fn with_max_reasons(mut self, max_reasons: usize) -> Self {
        self.max_reasons = max_reasons;
        self
    }

    /// Record the outcome of one question.
    pub fn push_outcome(&mut self, outcome: QuestionOutcome) {
        self.outcomes.push(outcome);
    }

    /// Record reason keywords a worker attached to their answer for some question.
    pub fn push_keywords<'a>(
        &mut self,
        label: &Label,
        keywords: impl IntoIterator<Item = &'a str>,
    ) {
        let entry = self.keyword_counts.entry(label.clone()).or_default();
        for kw in keywords {
            let kw = kw.trim().to_lowercase();
            if kw.is_empty() {
                continue;
            }
            *entry.entry(kw).or_insert(0) += 1;
        }
    }

    /// Number of questions folded into the result so far (`N`).
    pub fn questions(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of questions with an accepted answer.
    pub fn accepted_questions(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_accepted()).count()
    }

    /// Progress of the job in `[0, 1]`: accepted questions over total questions.
    pub fn progress(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.accepted_questions() as f64 / self.outcomes.len() as f64
    }

    /// Build the summary rows for the given answer domain, ordered by descending
    /// percentage.
    pub fn summarize(&self, domain: &[Label]) -> Vec<AnswerSummary> {
        let n = self.outcomes.len();
        let mut rows: Vec<AnswerSummary> = domain
            .iter()
            .map(|label| {
                let total: f64 = self.outcomes.iter().map(|o| o.score(label)).sum();
                let percentage = if n == 0 { 0.0 } else { total / n as f64 };
                AnswerSummary {
                    label: label.clone(),
                    percentage,
                    reasons: self.top_reasons(label),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            crate::verification::confidence::desc_nan_last(a.percentage, b.percentage)
                .then_with(|| a.label.cmp(&b.label))
        });
        rows
    }

    fn top_reasons(&self, label: &Label) -> Vec<String> {
        let Some(counts) = self.keyword_counts.get(label) else {
            return Vec::new();
        };
        let mut pairs: Vec<(&String, &usize)> = counts.iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        pairs
            .into_iter()
            .take(self.max_reasons)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> Label {
        Label::from(s)
    }

    #[test]
    fn outcome_scores_follow_the_definition() {
        let accepted = QuestionOutcome::Accepted {
            label: label("pos"),
        };
        assert_eq!(accepted.score(&label("pos")), 1.0);
        assert_eq!(accepted.score(&label("neg")), 0.0);
        assert!(accepted.is_accepted());

        let pending = QuestionOutcome::Pending {
            confidences: vec![(label("pos"), 0.6), (label("neg"), 0.3)],
        };
        assert_eq!(pending.score(&label("pos")), 0.6);
        assert_eq!(pending.score(&label("neg")), 0.3);
        assert_eq!(pending.score(&label("neu")), 0.0);
        assert!(!pending.is_accepted());
    }

    #[test]
    fn percentages_mix_accepted_and_pending_questions() {
        let mut presenter = ResultPresenter::new();
        presenter.push_outcome(QuestionOutcome::Accepted {
            label: label("pos"),
        });
        presenter.push_outcome(QuestionOutcome::Accepted {
            label: label("neg"),
        });
        presenter.push_outcome(QuestionOutcome::Pending {
            confidences: vec![(label("pos"), 0.5), (label("neg"), 0.5)],
        });
        let domain = [label("pos"), label("neg"), label("neu")];
        let rows = presenter.summarize(&domain);
        assert_eq!(rows.len(), 3);
        let find = |name: &str| rows.iter().find(|r| r.label.as_str() == name).unwrap();
        assert!((find("pos").percentage - 0.5).abs() < 1e-12);
        assert!((find("neg").percentage - 0.5).abs() < 1e-12);
        assert_eq!(find("neu").percentage, 0.0);
        assert!((presenter.progress() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(presenter.questions(), 3);
        assert_eq!(presenter.accepted_questions(), 2);
    }

    #[test]
    fn reasons_are_ranked_by_frequency() {
        let mut presenter = ResultPresenter::new().with_max_reasons(2);
        let pos = label("pos");
        presenter.push_keywords(&pos, ["Siri", "iOS 5", "siri"]);
        presenter.push_keywords(&pos, ["siri", "performance"]);
        presenter.push_keywords(&label("neg"), ["battery"]);
        presenter.push_outcome(QuestionOutcome::Accepted { label: pos.clone() });
        let rows = presenter.summarize(&[pos.clone(), label("neg")]);
        let pos_row = rows.iter().find(|r| r.label == pos).unwrap();
        assert_eq!(
            pos_row.reasons,
            vec!["siri".to_string(), "ios 5".to_string()]
        );
        let neg_row = rows.iter().find(|r| r.label.as_str() == "neg").unwrap();
        assert_eq!(neg_row.reasons, vec!["battery".to_string()]);
    }

    #[test]
    fn empty_presenter_reports_zeroes() {
        let presenter = ResultPresenter::new();
        assert_eq!(presenter.progress(), 0.0);
        let rows = presenter.summarize(&[label("a")]);
        assert_eq!(rows[0].percentage, 0.0);
        assert!(rows[0].reasons.is_empty());
    }

    #[test]
    fn blank_keywords_are_ignored() {
        let mut presenter = ResultPresenter::new();
        presenter.push_keywords(&label("pos"), ["  ", "", "ok"]);
        presenter.push_outcome(QuestionOutcome::Accepted {
            label: label("pos"),
        });
        let rows = presenter.summarize(&[label("pos")]);
        assert_eq!(rows[0].reasons, vec!["ok".to_string()]);
    }

    #[test]
    fn summary_rows_are_sorted_by_percentage() {
        let mut presenter = ResultPresenter::new();
        for _ in 0..3 {
            presenter.push_outcome(QuestionOutcome::Accepted {
                label: label("good"),
            });
        }
        presenter.push_outcome(QuestionOutcome::Accepted {
            label: label("bad"),
        });
        let rows = presenter.summarize(&[label("bad"), label("good")]);
        assert_eq!(rows[0].label.as_str(), "good");
        assert_eq!(rows[1].label.as_str(), "bad");
        assert!((rows[0].percentage - 0.75).abs() < 1e-12);
    }
}
