//! # cdas-core — the quality-sensitive answering model of CDAS
//!
//! This crate implements the core contribution of *CDAS: A Crowdsourcing Data Analytics
//! System* (Liu et al., PVLDB 5(10), 2012): a **quality-sensitive answering model** that a
//! crowdsourcing query engine uses to
//!
//! 1. **predict** how many human workers must be assigned to a task so that the aggregated
//!    answer meets a user-required accuracy `C` ([`prediction`]),
//! 2. **verify** (aggregate) the conflicting answers returned by workers, weighting each
//!    worker by their historical accuracy ([`verification`]),
//! 3. process answers **online**, producing an approximate result as soon as the first
//!    answer arrives and terminating early once the result is stable ([`online`]),
//! 4. estimate worker accuracy by **sampling** gold questions with known ground truth
//!    ([`sampling`]), and
//! 5. present aggregated results with per-answer percentages and keyword reasons
//!    ([`presentation`]), and
//! 6. **share** the worker-accuracy estimates learned by one job with every other job
//!    multiplexed over the same crowd, behind a read-through cache ([`sharing`]).
//!
//! The crate is deliberately free of I/O and randomness: it consumes plain observations
//! (who answered what, with which estimated accuracy) and produces decisions. The
//! surrounding crates (`cdas-crowd`, `cdas-engine`) supply those observations, either from
//! a simulated crowd or from a real platform adapter.
//!
//! ## Quick example
//!
//! ```
//! use cdas_core::prediction::PredictionModel;
//! use cdas_core::types::{Label, Observation, Vote, WorkerId};
//! use cdas_core::verification::probabilistic::ProbabilisticVerifier;
//!
//! // 1. How many workers do we need for 95% expected accuracy if the average
//! //    worker is right 75% of the time?
//! let prediction = PredictionModel::new(0.75).unwrap();
//! let n = prediction.refined_workers(0.95).unwrap();
//! assert!(n >= 5 && n % 2 == 1);
//!
//! // 2. Aggregate conflicting answers, weighting by worker accuracy
//! //    (the worked example of Table 3/4 in the paper).
//! let obs = Observation::from_votes(vec![
//!     Vote::new(WorkerId(1), Label::from("pos"), 0.54),
//!     Vote::new(WorkerId(2), Label::from("pos"), 0.31),
//!     Vote::new(WorkerId(3), Label::from("neu"), 0.49),
//!     Vote::new(WorkerId(4), Label::from("neg"), 0.73),
//!     Vote::new(WorkerId(5), Label::from("pos"), 0.46),
//! ]);
//! let verifier = ProbabilisticVerifier::with_domain_size(3);
//! let result = verifier.verify(&obs).unwrap();
//! assert_eq!(result.best().as_str(), "neg");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod accuracy;
pub mod codec;
pub mod economics;
pub mod error;
pub mod math;
pub mod model;
pub mod online;
pub mod prediction;
pub mod presentation;
pub mod sampling;
pub mod sharing;
pub mod types;
pub mod verification;

pub use error::{CdasError, Result};
pub use model::QualitySensitiveModel;
pub use types::{Label, Observation, QuestionId, Vote, WorkerId};
