//! The economic model of the crowd platform (§3.1): what a query costs.
//!
//! Every worker answering a HIT is paid `m_c`, and the platform charges `m_s` per worker
//! per HIT, so a HIT with `n` workers costs `(m_c + m_s)·n`. A TSA query that receives `K`
//! candidate tweets per time unit over a window of `w` units costs
//! `(m_c + m_s) · n · K · w`, and with the prediction model `n = g(C)`, the cost becomes
//! `(m_c + m_s) · K · w · g(C)`.

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};

/// Price of one worker answering one HIT: the worker fee `m_c` plus the platform fee `m_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Reward paid to the worker per HIT (`m_c`), in dollars.
    pub worker_fee: f64,
    /// Fee paid to the platform per worker per HIT (`m_s`), in dollars.
    pub platform_fee: f64,
}

impl Default for CostModel {
    /// The paper's running example: one cent per worker per HIT, plus a 10 % platform fee
    /// (AMT's historical commission).
    fn default() -> Self {
        CostModel {
            worker_fee: 0.01,
            platform_fee: 0.001,
        }
    }
}

impl CostModel {
    /// Create a cost model, validating that both fees are non-negative.
    pub fn new(worker_fee: f64, platform_fee: f64) -> Result<Self> {
        if worker_fee < 0.0 || worker_fee.is_nan() {
            return Err(CdasError::NonPositive { what: "worker fee" });
        }
        if platform_fee < 0.0 || platform_fee.is_nan() {
            return Err(CdasError::NonPositive {
                what: "platform fee",
            });
        }
        Ok(CostModel {
            worker_fee,
            platform_fee,
        })
    }

    /// The combined price per worker per HIT, `m_c + m_s`.
    pub fn per_assignment(&self) -> f64 {
        self.worker_fee + self.platform_fee
    }

    /// Cost of one HIT answered by `n` workers: `(m_c + m_s)·n`.
    pub fn hit_cost(&self, workers: u64) -> f64 {
        self.per_assignment() * workers as f64
    }

    /// Cost of a windowed query: `(m_c + m_s) · n · K · w` where `K` is the number of HITs
    /// (candidate items) per time unit and `w` the number of time units.
    pub fn query_cost(&self, workers: u64, items_per_unit: u64, window_units: u64) -> f64 {
        self.hit_cost(workers) * items_per_unit as f64 * window_units as f64
    }

    /// Cost saved by early termination: the difference between paying for `planned` workers
    /// and paying only the `consumed` answers actually delivered before cancellation.
    pub fn savings(&self, planned: u64, consumed: u64) -> f64 {
        self.hit_cost(planned.saturating_sub(consumed.min(planned)))
    }
}

/// Running budget tracker used by the engine to enforce a spending cap across HITs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum spend allowed, in dollars; `None` means unlimited.
    pub limit: Option<f64>,
    spent: f64,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            limit: None,
            spent: 0.0,
        }
    }

    /// A budget capped at `limit` dollars.
    pub fn capped(limit: f64) -> Result<Self> {
        if limit < 0.0 || limit.is_nan() {
            return Err(CdasError::NonPositive {
                what: "budget limit",
            });
        }
        Ok(Budget {
            limit: Some(limit),
            spent: 0.0,
        })
    }

    /// Amount spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget (`None` when unlimited).
    pub fn remaining(&self) -> Option<f64> {
        self.limit.map(|l| (l - self.spent).max(0.0))
    }

    /// Whether a charge of `amount` fits in the remaining budget.
    pub fn can_afford(&self, amount: f64) -> bool {
        match self.limit {
            None => true,
            Some(limit) => self.spent + amount <= limit + 1e-12,
        }
    }

    /// Record a charge. Returns an error (and records nothing) when the budget would be
    /// exceeded.
    pub fn charge(&mut self, amount: f64) -> Result<()> {
        if amount < 0.0 || amount.is_nan() {
            return Err(CdasError::NonPositive {
                what: "charge amount",
            });
        }
        if !self.can_afford(amount) {
            return Err(CdasError::NonPositive {
                what: "remaining budget",
            });
        }
        self.spent += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_validation() {
        assert!(CostModel::new(-0.01, 0.0).is_err());
        assert!(CostModel::new(0.01, -0.1).is_err());
        assert!(CostModel::new(f64::NAN, 0.0).is_err());
        assert!(CostModel::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn hit_and_query_cost_follow_the_formulas() {
        let model = CostModel::new(0.01, 0.001).unwrap();
        assert!((model.per_assignment() - 0.011).abs() < 1e-12);
        assert!((model.hit_cost(5) - 0.055).abs() < 1e-12);
        // (m_c + m_s) · n · K · w with n = 5, K = 20 tweets/unit, w = 10 units.
        assert!((model.query_cost(5, 20, 10) - 11.0).abs() < 1e-9);
        assert_eq!(model.query_cost(5, 0, 10), 0.0);
    }

    #[test]
    fn default_model_matches_paper_example() {
        let model = CostModel::default();
        assert!((model.worker_fee - 0.01).abs() < 1e-12);
        assert!(model.per_assignment() > 0.01);
    }

    #[test]
    fn savings_from_early_termination() {
        let model = CostModel::new(0.01, 0.0).unwrap();
        assert!((model.savings(29, 13) - 0.16).abs() < 1e-12);
        assert_eq!(model.savings(5, 5), 0.0);
        // Over-delivery never yields negative savings.
        assert_eq!(model.savings(5, 9), 0.0);
    }

    #[test]
    fn budget_tracks_spending() {
        let mut b = Budget::capped(1.0).unwrap();
        assert_eq!(b.remaining(), Some(1.0));
        assert!(b.can_afford(0.5));
        b.charge(0.6).unwrap();
        assert!((b.spent() - 0.6).abs() < 1e-12);
        assert!(!b.can_afford(0.5));
        assert!(b.charge(0.5).is_err());
        assert!(
            (b.spent() - 0.6).abs() < 1e-12,
            "failed charge must not be recorded"
        );
        b.charge(0.4).unwrap();
        assert!((b.remaining().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn unlimited_budget_accepts_everything() {
        let mut b = Budget::unlimited();
        assert_eq!(b.remaining(), None);
        for _ in 0..100 {
            b.charge(123.0).unwrap();
        }
        assert!(b.spent() > 12_000.0);
    }

    #[test]
    fn budget_validation() {
        assert!(Budget::capped(-1.0).is_err());
        let mut b = Budget::capped(1.0).unwrap();
        assert!(b.charge(-0.1).is_err());
        assert!(b.charge(f64::NAN).is_err());
    }
}
