//! Cross-job sharing of worker-accuracy estimates.
//!
//! §2.1 describes a job manager that accepts *jobs* (plural), yet the accuracy a worker
//! demonstrates on one job's gold questions (§3.3, Algorithm 4) is knowledge about the
//! *worker*, not about the job. When many analytics jobs multiplex one worker pool, the
//! estimates every job learns should immediately reweight that worker's votes in every
//! other job. This module provides the two pieces the multi-job scheduler
//! (`cdas_engine::scheduler`) builds on:
//!
//! * [`SharedAccuracyRegistry`] — a cheaply clonable, generation-counted, **thread-safe**
//!   handle to one logical [`AccuracyRegistry`] shared by every job. Jobs
//!   [`absorb`](SharedAccuracyRegistry::absorb) the estimates each HIT produces; absorbing
//!   merges per worker, weighting by the number of gold questions behind each estimate.
//!   Internally the registry is **lock-striped**: entries are spread over
//!   [`STRIPES`] independently locked buckets keyed by worker id, so shard threads of a
//!   parallel fleet ([`run_parallel`]) writing estimates for *different* workers never
//!   contend on one global lock. Per-worker merges stay atomic (a worker's estimates live
//!   in exactly one stripe), and because the sample-weighted merge pools per worker, the
//!   final contents are independent of the interleaving of writers — absorbing the same
//!   per-worker estimate sequences in any thread order converges to the same registry.
//! * [`AccuracyCache`] — a small read-through cache in front of the shared registry. The
//!   verification hot loop asks for a registry snapshot once per HIT batch; the cache
//!   re-serves the previous snapshot for as long as the shared generation has not moved,
//!   mirroring the shared-cache discipline of multi-tenant dispatch loops. The cache is
//!   deliberately *not* `Sync` — each shard thread owns its own cache over the same shared
//!   registry, which is exactly the per-core-cache / shared-store split of a sharded
//!   storage server.
//!
//! [`run_parallel`]: ../../cdas_engine/scheduler/struct.JobScheduler.html#method.run_parallel
//!
//! ```
//! use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};
//! use cdas_core::types::WorkerId;
//!
//! let shared = SharedAccuracyRegistry::new();
//! let job_a_handle = shared.clone(); // both handles see the same estimates
//! job_a_handle.record(WorkerId(7), 0.9, 10);
//!
//! let cache = AccuracyCache::new(shared);
//! assert_eq!(cache.snapshot().accuracy_of(WorkerId(7)), Some(0.9));
//! let _ = cache.snapshot(); // generation unchanged: served from the cache
//! assert_eq!(cache.hits(), 1);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::accuracy::AccuracyRegistry;
use crate::types::WorkerId;

/// Generation value meaning "no snapshot taken yet".
const NEVER: u64 = u64::MAX;

/// Number of independently locked buckets the shared registry spreads workers over.
///
/// Sixteen stripes keeps contention negligible for any plausible shard count (a parallel
/// fleet runs one thread per platform shard, and shards own disjoint worker partitions —
/// two threads only ever meet on a stripe, never on a worker).
pub const STRIPES: usize = 16;

#[derive(Debug)]
struct StripedState {
    /// The buckets; a worker's entry lives in stripe `worker.0 % STRIPES`.
    /// A fixed-size array (not a `Vec`) so the type itself proves there are
    /// always exactly [`STRIPES`] stripes — stripe lookups cannot miss.
    stripes: Box<[RwLock<AccuracyRegistry>; STRIPES]>,
    /// Fallback accuracy carried by a seeded registry ([`SharedAccuracyRegistry::with_registry`]),
    /// preserved so snapshots round-trip the whole [`AccuracyRegistry`] — entries *and*
    /// default — exactly like the pre-striping implementation's full clone did.
    default_accuracy: RwLock<Option<f64>>,
    /// Global write generation, bumped after any stripe changes. Monotone, so a cache
    /// that re-reads an unchanged generation may safely keep serving its snapshot.
    generation: AtomicU64,
}

impl Default for StripedState {
    fn default() -> Self {
        StripedState {
            stripes: Box::new(std::array::from_fn(|_| RwLock::default())),
            default_accuracy: RwLock::new(None),
            generation: AtomicU64::new(0),
        }
    }
}

/// A cheaply clonable, thread-safe handle to one logical [`AccuracyRegistry`] shared
/// across jobs — and, in a parallel fleet, across shard threads.
///
/// Every clone refers to the same underlying registry; writes through any handle are
/// visible to all. Entries are lock-striped by worker id ([`STRIPES`] buckets), so writers
/// touching different workers rarely share a lock and per-worker merges remain atomic. A
/// monotonically increasing *generation* is bumped on every write that changed an entry,
/// which lets read-side caches ([`AccuracyCache`]) detect staleness without diffing
/// registries.
#[derive(Debug, Clone, Default)]
pub struct SharedAccuracyRegistry {
    inner: Arc<StripedState>,
}

/// Index of the stripe a worker's estimate lives in.
fn stripe_of(worker: WorkerId) -> usize {
    (worker.0 % STRIPES as u64) as usize
}

impl SharedAccuracyRegistry {
    /// An empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared registry seeded with existing estimates (e.g. from a previous fleet run).
    /// The seed's configured default accuracy, if any, is carried along and re-applied to
    /// every [`snapshot`](Self::snapshot).
    pub fn with_registry(registry: AccuracyRegistry) -> Self {
        let shared = Self::new();
        // Poison recovery is sound here and in the accessors below: every
        // critical section is a handful of scalar reads/writes on one stripe
        // (no multi-step invariants), so a panic mid-section cannot leave a
        // torn state — the worst case is a spuriously stale estimate.
        *shared
            .inner
            .default_accuracy
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = registry.default_accuracy();
        for (&worker, entry) in registry.iter() {
            let mut stripe = shared.write_stripe(stripe_of(worker));
            stripe.set(worker, entry.accuracy, entry.samples);
        }
        shared
    }

    fn default_accuracy(&self) -> Option<f64> {
        *self
            .inner
            .default_accuracy
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The stripe lock at `i`. Total over any index: every caller derives `i`
    /// from [`stripe_of`] or a `0..STRIPES` loop, and a stray out-of-range
    /// index (unreachable today) aliases stripe 0 instead of panicking
    /// mid-HIT.
    fn stripe(&self, i: usize) -> &RwLock<AccuracyRegistry> {
        let [first, ..] = &*self.inner.stripes;
        self.inner.stripes.get(i).unwrap_or(first)
    }

    fn read_stripe(&self, i: usize) -> std::sync::RwLockReadGuard<'_, AccuracyRegistry> {
        let stripe = self.stripe(i);
        stripe
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_stripe(&self, i: usize) -> std::sync::RwLockWriteGuard<'_, AccuracyRegistry> {
        let stripe = self.stripe(i);
        stripe
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record (or merge) a single worker estimate backed by `samples` gold questions.
    ///
    /// Merging follows the same policy as [`absorb`](Self::absorb), but only the worker's
    /// own stripe is locked — this is the hot write of the clocked ingestion path.
    pub fn record(&self, worker: WorkerId, accuracy: f64, samples: usize) {
        let changed = {
            let mut stripe = self.write_stripe(stripe_of(worker));
            merge_entry(&mut stripe, worker, accuracy, samples)
        };
        if changed {
            self.inner.generation.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Merge a batch of estimates (typically one HIT's gold-sampling output) into the
    /// shared registry. Returns the number of workers whose entry changed.
    ///
    /// Per worker, the merge pools sample counts: an existing estimate backed by `s₁` gold
    /// questions and a new one backed by `s₂` combine into the sample-weighted mean backed
    /// by `s₁ + s₂`. Injected estimates (`samples == 0`, e.g. a simulation oracle) never
    /// displace sampled ones; among injected estimates the latest wins.
    ///
    /// Stripes are locked one at a time (never nested), so concurrent absorbs from shard
    /// threads cannot deadlock; each worker's merge is atomic under its stripe lock.
    pub fn absorb(&self, estimates: &AccuracyRegistry) -> usize {
        if estimates.is_empty() {
            return 0;
        }
        let mut changed = 0usize;
        for (&worker, incoming) in estimates.iter() {
            let mut stripe = self.write_stripe(stripe_of(worker));
            if merge_entry(&mut stripe, worker, incoming.accuracy, incoming.samples) {
                changed += 1;
            }
        }
        if changed > 0 {
            self.inner.generation.fetch_add(1, Ordering::AcqRel);
        }
        changed
    }

    /// Overwrite a batch of estimates verbatim — no pooling — returning the number of
    /// workers whose entry changed (bit-compared, so re-adopting an identical entry is a
    /// no-op and does not bump the generation).
    ///
    /// This is the merge-back primitive for shard isolation (see
    /// `JobScheduler::run_parallel`): each parallel shard runs over its own registry
    /// seeded from a pre-spawn snapshot of the fleet registry, and once the threads join
    /// the parent adopts every entry a shard *changed*. A shard's entry already pooled
    /// the seed's history with the run's new gold samples, so [`absorb`](Self::absorb)
    /// would pool the seed portion twice; adoption replaces the entry wholesale instead.
    /// Sound because shard rosters are disjoint — each worker's sampled history lives in
    /// exactly one shard.
    pub fn adopt(&self, estimates: &AccuracyRegistry) -> usize {
        if estimates.is_empty() {
            return 0;
        }
        let mut changed = 0usize;
        for (&worker, incoming) in estimates.iter() {
            let mut stripe = self.write_stripe(stripe_of(worker));
            let same = stripe.get(worker).is_some_and(|current| {
                current.accuracy.to_bits() == incoming.accuracy.to_bits()
                    && current.samples == incoming.samples
            });
            if !same {
                stripe.set(worker, incoming.accuracy, incoming.samples);
                changed += 1;
            }
        }
        if changed > 0 {
            self.inner.generation.fetch_add(1, Ordering::AcqRel);
        }
        changed
    }

    /// The current write generation (bumped on every mutating call that changed an entry).
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// An owned copy of the current registry contents, merged across all stripes.
    ///
    /// Stripes are copied one at a time; under concurrent writers the snapshot is a
    /// consistent view of each *stripe*, not a global atomic cut — the registry's merge
    /// converges regardless of interleaving, so a slightly torn read only means a
    /// slightly staler estimate, and the generation counter makes any missed write show
    /// up as staleness at the next cache refresh.
    pub fn snapshot(&self) -> AccuracyRegistry {
        let mut merged = AccuracyRegistry::new();
        if let Some(default) = self.default_accuracy() {
            merged = merged.with_default_accuracy(default);
        }
        for i in 0..STRIPES {
            let stripe = self.read_stripe(i);
            for (&worker, entry) in stripe.iter() {
                merged.set(worker, entry.accuracy, entry.samples);
            }
        }
        merged
    }

    /// Number of workers with an estimate.
    pub fn len(&self) -> usize {
        (0..STRIPES).map(|i| self.read_stripe(i).len()).sum()
    }

    /// Whether no worker has an estimate yet.
    pub fn is_empty(&self) -> bool {
        (0..STRIPES).all(|i| self.read_stripe(i).is_empty())
    }

    /// The population mean `μ` over all shared estimates, falling back to the seeded
    /// default accuracy when no worker has an estimate yet (mirroring
    /// [`AccuracyRegistry::mean_accuracy`]).
    pub fn mean_accuracy(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..STRIPES {
            let stripe = self.read_stripe(i);
            for (_, entry) in stripe.iter() {
                sum += entry.accuracy;
                count += 1;
            }
        }
        if count > 0 {
            Some(sum / count as f64)
        } else {
            self.default_accuracy()
        }
    }

    /// A worker's current shared estimate, if any. Locks only the worker's stripe.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        self.read_stripe(stripe_of(worker))
            .get(worker)
            .map(|e| e.accuracy)
    }
}

/// The per-worker merge policy (see [`SharedAccuracyRegistry::absorb`]), applied to one
/// stripe under its write lock. Returns whether the entry changed.
///
/// The incoming accuracy is normalized *before* pooling, exactly as the pre-striping
/// implementation did by routing every write through [`AccuracyRegistry::set`]: a NaN
/// becomes 0.5 and out-of-range values clamp into (0, 1), so a degenerate input shifts
/// the sample-weighted mean by at most its own weight instead of poisoning (NaN) or
/// inflating (>1) the worker's whole pooled history.
fn merge_entry(
    stripe: &mut AccuracyRegistry,
    worker: WorkerId,
    accuracy: f64,
    samples: usize,
) -> bool {
    let accuracy = crate::math::clamp_probability(accuracy);
    let merged = match stripe.get(worker) {
        None => Some((accuracy, samples)),
        Some(current) => {
            let total = current.samples + samples;
            if samples == 0 && current.samples > 0 {
                None // a sampled estimate outranks an injected one
            } else if total == 0 {
                Some((accuracy, 0)) // both injected: latest wins
            } else {
                let pooled = (current.accuracy * current.samples as f64
                    + accuracy * samples as f64)
                    / total as f64;
                Some((pooled, total))
            }
        }
    };
    match merged {
        Some((accuracy, samples)) => {
            stripe.set(worker, accuracy, samples);
            true
        }
        None => false,
    }
}

/// A read-through cache over a [`SharedAccuracyRegistry`].
///
/// [`snapshot`](AccuracyCache::snapshot) returns the shared registry's contents. A read
/// only goes to the shared side (lock acquisition + rebuild of the local copy) when the
/// shared generation has advanced since the last read; otherwise it is served from the
/// local copy without touching the shared state at all. Batches that absorb new gold
/// estimates therefore miss, while batches that learned nothing new — gold-free jobs,
/// steady state after the crowd is fully estimated — hit. [`hits`](AccuracyCache::hits)
/// and [`misses`](AccuracyCache::misses) expose the cache's effectiveness for fleet
/// metrics.
#[derive(Debug)]
pub struct AccuracyCache {
    shared: SharedAccuracyRegistry,
    cached_generation: Cell<u64>,
    cached: RefCell<AccuracyRegistry>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl AccuracyCache {
    /// A cache over the given shared registry, initially empty (first read is a miss).
    pub fn new(shared: SharedAccuracyRegistry) -> Self {
        AccuracyCache {
            shared,
            cached_generation: Cell::new(NEVER),
            cached: RefCell::new(AccuracyRegistry::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The shared registry behind the cache (for absorbing new estimates).
    pub fn shared(&self) -> &SharedAccuracyRegistry {
        &self.shared
    }

    fn refresh(&self) {
        let generation = self.shared.generation();
        if self.cached_generation.get() == generation {
            self.hits.set(self.hits.get() + 1);
        } else {
            *self.cached.borrow_mut() = self.shared.snapshot();
            self.cached_generation.set(generation);
            self.misses.set(self.misses.get() + 1);
        }
    }

    /// The current registry contents, served from the cache when the shared generation has
    /// not moved since the last read.
    pub fn snapshot(&self) -> AccuracyRegistry {
        self.refresh();
        self.cached.borrow().clone()
    }

    /// A single worker's accuracy, read through the cache.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        self.refresh();
        self.cached.borrow().get(worker).map(|e| e.accuracy)
    }

    /// Number of reads served from the cached snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of reads that had to rebuild the snapshot from the shared registry.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Fraction of reads served from the cache (0 when nothing was read yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_registry() {
        let a = SharedAccuracyRegistry::new();
        let b = a.clone();
        assert!(a.is_empty());
        b.record(WorkerId(1), 0.8, 5);
        assert_eq!(a.len(), 1);
        assert_eq!(a.accuracy_of(WorkerId(1)), Some(0.8));
        assert_eq!(a.generation(), b.generation());
    }

    #[test]
    fn absorb_pools_samples_per_worker() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.6, 4);
        // A second job sees the same worker do better on 8 gold questions.
        let mut estimates = AccuracyRegistry::new();
        estimates.set(WorkerId(1), 0.9, 8);
        estimates.set(WorkerId(2), 0.7, 2);
        assert_eq!(shared.absorb(&estimates), 2);
        let snap = shared.snapshot();
        let w1 = snap.get(WorkerId(1)).unwrap();
        assert!((w1.accuracy - (0.6 * 4.0 + 0.9 * 8.0) / 12.0).abs() < 1e-12);
        assert_eq!(w1.samples, 12);
        assert_eq!(snap.get(WorkerId(2)).unwrap().samples, 2);
    }

    #[test]
    fn adopt_overwrites_without_pooling() {
        // A shard seeded with (0.6, 4) pools 8 new gold samples into (0.8, 12); the
        // parent adopts the pooled entry verbatim instead of re-pooling the seed.
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.6, 4);
        let mut delta = AccuracyRegistry::new();
        delta.set(WorkerId(1), 0.8, 12);
        delta.set(WorkerId(2), 0.7, 2);
        assert_eq!(shared.adopt(&delta), 2);
        let w1 = shared.snapshot().get(WorkerId(1)).copied().unwrap();
        assert_eq!(w1.accuracy.to_bits(), 0.8f64.to_bits());
        assert_eq!(w1.samples, 12);
        // Unlike absorb, adopt lets an injected entry replace a sampled one — the
        // adopter vouches for the entry being the worker's whole history.
        let mut injected = AccuracyRegistry::new();
        injected.set(WorkerId(2), 0.3, 0);
        assert_eq!(shared.adopt(&injected), 1);
        assert_eq!(shared.accuracy_of(WorkerId(2)), Some(0.3));
        // Re-adopting identical entries is a generation-preserving no-op.
        let before = shared.generation();
        assert_eq!(shared.adopt(&injected), 0);
        assert_eq!(shared.generation(), before, "no-op adopt must not bump");
        assert_eq!(shared.adopt(&AccuracyRegistry::new()), 0);
    }

    #[test]
    fn injected_estimates_never_displace_sampled_ones() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.8, 6);
        let before = shared.generation();
        let mut oracle = AccuracyRegistry::new();
        oracle.set(WorkerId(1), 0.2, 0);
        assert_eq!(shared.absorb(&oracle), 0);
        assert_eq!(shared.accuracy_of(WorkerId(1)), Some(0.8));
        assert_eq!(shared.generation(), before, "no-op absorb must not bump");
        // But injected-over-injected updates in place.
        shared.record(WorkerId(2), 0.5, 0);
        shared.record(WorkerId(2), 0.6, 0);
        assert_eq!(shared.accuracy_of(WorkerId(2)), Some(0.6));
    }

    #[test]
    fn absorbing_nothing_is_free() {
        let shared = SharedAccuracyRegistry::new();
        let before = shared.generation();
        assert_eq!(shared.absorb(&AccuracyRegistry::new()), 0);
        assert_eq!(shared.generation(), before);
    }

    #[test]
    fn cache_serves_repeated_reads_without_rebuilding() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(3), 0.75, 3);
        let cache = AccuracyCache::new(shared.clone());
        assert_eq!(cache.snapshot().len(), 1);
        assert_eq!(cache.accuracy_of(WorkerId(3)), Some(0.75));
        assert_eq!(cache.misses(), 1, "only the first read rebuilds");
        assert_eq!(cache.hits(), 1);
        // A write through any handle invalidates the cache.
        shared.record(WorkerId(4), 0.65, 2);
        assert_eq!(cache.snapshot().len(), 2);
        assert_eq!(cache.misses(), 2);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn seeded_registry_is_visible_immediately() {
        let mut seed = AccuracyRegistry::new();
        seed.set(WorkerId(9), 0.9, 10);
        let shared = SharedAccuracyRegistry::with_registry(seed);
        assert_eq!(shared.len(), 1);
        assert!((shared.mean_accuracy().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_accuracies_are_normalized_before_pooling() {
        // Regression: the striped rewrite briefly pooled the *raw* incoming accuracy and
        // clamped only the result, so record(w, 1.5, …) credited >100% accuracy into the
        // weighted mean and record(w, NaN, …) wiped the worker's whole history to 0.5.
        // Parity with the old set()-then-merge path: normalize first, pool second.
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.5, 10);
        shared.record(WorkerId(1), 1.5, 2); // clamps to ~1.0 before pooling
        let pooled = shared.accuracy_of(WorkerId(1)).unwrap();
        assert!(
            (pooled - (0.5 * 10.0 + 1.0 * 2.0) / 12.0).abs() < 1e-6,
            "pooled {pooled}"
        );
        shared.record(WorkerId(2), 0.8, 10);
        shared.record(WorkerId(2), f64::NAN, 2); // NaN contributes 0.5 at weight 2
        let pooled = shared.accuracy_of(WorkerId(2)).unwrap();
        assert!(!pooled.is_nan(), "NaN must not erase the history");
        assert!((pooled - (0.8 * 10.0 + 0.5 * 2.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn seeded_default_accuracy_survives_striping() {
        // Regression: the striped rewrite initially copied only the seed's *entries*, so
        // a registry seeded with a default accuracy lost it — snapshots stopped answering
        // for unseen workers and the empty-registry mean flipped to None. The default
        // must round-trip like the pre-striping full clone did.
        let seed = AccuracyRegistry::new().with_default_accuracy(0.75);
        let shared = SharedAccuracyRegistry::with_registry(seed);
        assert_eq!(shared.mean_accuracy(), Some(0.75), "empty-registry mean");
        let snap = shared.snapshot();
        assert_eq!(snap.accuracy_of(WorkerId(123)), Some(0.75));
        assert_eq!(snap.default_accuracy(), Some(0.75));
        // Real estimates still take over once they exist.
        shared.record(WorkerId(1), 0.9, 4);
        assert_eq!(shared.mean_accuracy(), Some(0.9));
        assert_eq!(shared.snapshot().accuracy_of(WorkerId(123)), Some(0.75));
    }

    #[test]
    fn entries_spread_across_stripes_and_reads_see_all_of_them() {
        let shared = SharedAccuracyRegistry::new();
        // Two full rounds over the stripe space: every stripe holds exactly two workers.
        for id in 0..(2 * STRIPES as u64) {
            shared.record(WorkerId(id), 0.6, 3);
        }
        assert_eq!(shared.len(), 2 * STRIPES);
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 2 * STRIPES);
        for id in 0..(2 * STRIPES as u64) {
            assert_eq!(shared.accuracy_of(WorkerId(id)), Some(0.6));
        }
        assert!((shared.mean_accuracy().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn concurrent_writers_over_disjoint_workers_match_the_sequential_registry() {
        // The parallel-fleet contract: shard threads own disjoint worker partitions, so
        // each worker's estimate sequence is applied by exactly one thread in a
        // deterministic order — the final registry must be bit-identical to applying all
        // sequences on one thread, whatever the cross-thread interleaving was.
        const THREADS: u64 = 8;
        const WORKERS_PER_THREAD: u64 = 40;
        let record_all = |shared: &SharedAccuracyRegistry, t: u64| {
            for w in 0..WORKERS_PER_THREAD {
                let worker = WorkerId(t * WORKERS_PER_THREAD + w);
                // Two merges per worker, so the pooled mean is actually exercised.
                shared.record(worker, 0.5 + 0.001 * (w % 37) as f64, 3);
                shared.record(worker, 0.9 - 0.002 * (w % 11) as f64, 7);
            }
        };

        let sequential = SharedAccuracyRegistry::new();
        for t in 0..THREADS {
            record_all(&sequential, t);
        }

        let parallel = SharedAccuracyRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let handle = parallel.clone();
                scope.spawn(move || record_all(&handle, t));
            }
        });

        let (a, b) = (sequential.snapshot(), parallel.snapshot());
        assert_eq!(a.len(), b.len());
        for (&worker, expected) in a.iter() {
            let got = b.get(worker).expect("worker present in parallel registry");
            assert_eq!(expected.accuracy.to_bits(), got.accuracy.to_bits());
            assert_eq!(expected.samples, got.samples);
        }
    }

    #[test]
    fn contended_workers_pool_every_sample_exactly_once() {
        // Threads hammering the SAME workers: per-worker merges are atomic under the
        // stripe lock, so no sample is lost or double-counted, and the pooled mean lands
        // within float-reassociation distance of the sequential order (the weighted-mean
        // merge is order-independent up to rounding).
        const THREADS: usize = 8;
        const ROUNDS: usize = 25;
        let workers = [WorkerId(0), WorkerId(1), WorkerId(16), WorkerId(17)];

        let parallel = SharedAccuracyRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let handle = parallel.clone();
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        for w in workers {
                            handle.record(w, 0.5 + 0.01 * ((t + r) % 30) as f64, 2);
                        }
                    }
                });
            }
        });

        let sequential = SharedAccuracyRegistry::new();
        for t in 0..THREADS {
            for r in 0..ROUNDS {
                for w in workers {
                    sequential.record(w, 0.5 + 0.01 * ((t + r) % 30) as f64, 2);
                }
            }
        }

        let (par, seq) = (parallel.snapshot(), sequential.snapshot());
        for w in workers {
            let p = par.get(w).unwrap();
            let s = seq.get(w).unwrap();
            assert_eq!(p.samples, THREADS * ROUNDS * 2, "a sample went missing");
            assert_eq!(p.samples, s.samples);
            assert!(
                (p.accuracy - s.accuracy).abs() < 1e-9,
                "pooled mean diverged: parallel {} vs sequential {}",
                p.accuracy,
                s.accuracy
            );
        }
        assert!(parallel.generation() > 0);
    }
}
