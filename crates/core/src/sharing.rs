//! Cross-job sharing of worker-accuracy estimates.
//!
//! §2.1 describes a job manager that accepts *jobs* (plural), yet the accuracy a worker
//! demonstrates on one job's gold questions (§3.3, Algorithm 4) is knowledge about the
//! *worker*, not about the job. When many analytics jobs multiplex one worker pool, the
//! estimates every job learns should immediately reweight that worker's votes in every
//! other job. This module provides the two pieces the multi-job scheduler
//! (`cdas_engine::scheduler`) builds on:
//!
//! * [`SharedAccuracyRegistry`] — a cheaply clonable, generation-counted handle to one
//!   [`AccuracyRegistry`] shared by every job. Jobs [`absorb`](SharedAccuracyRegistry::absorb)
//!   the estimates each HIT produces; absorbing merges per worker, weighting by the number
//!   of gold questions behind each estimate.
//! * [`AccuracyCache`] — a small read-through cache in front of the shared registry. The
//!   verification hot loop asks for a registry snapshot once per HIT batch; the cache
//!   re-serves the previous snapshot for as long as the shared generation has not moved,
//!   mirroring the shared-cache discipline of multi-tenant dispatch loops.
//!
//! ```
//! use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};
//! use cdas_core::types::WorkerId;
//!
//! let shared = SharedAccuracyRegistry::new();
//! let job_a_handle = shared.clone(); // both handles see the same estimates
//! job_a_handle.record(WorkerId(7), 0.9, 10);
//!
//! let cache = AccuracyCache::new(shared);
//! assert_eq!(cache.snapshot().accuracy_of(WorkerId(7)), Some(0.9));
//! let _ = cache.snapshot(); // generation unchanged: served from the cache
//! assert_eq!(cache.hits(), 1);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::{Arc, RwLock};

use crate::accuracy::AccuracyRegistry;
use crate::types::WorkerId;

/// Generation value meaning "no snapshot taken yet".
const NEVER: u64 = u64::MAX;

#[derive(Debug, Default)]
struct SharedState {
    registry: AccuracyRegistry,
    generation: u64,
}

/// A cheaply clonable handle to one [`AccuracyRegistry`] shared across jobs.
///
/// Every clone refers to the same underlying registry; writes through any handle are
/// visible to all. A monotonically increasing *generation* is bumped on every write, which
/// lets read-side caches ([`AccuracyCache`]) detect staleness without diffing registries.
#[derive(Debug, Clone, Default)]
pub struct SharedAccuracyRegistry {
    inner: Arc<RwLock<SharedState>>,
}

impl SharedAccuracyRegistry {
    /// An empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared registry seeded with existing estimates (e.g. from a previous fleet run).
    pub fn with_registry(registry: AccuracyRegistry) -> Self {
        SharedAccuracyRegistry {
            inner: Arc::new(RwLock::new(SharedState {
                registry,
                generation: 0,
            })),
        }
    }

    fn read<T>(&self, f: impl FnOnce(&SharedState) -> T) -> T {
        f(&self
            .inner
            .read()
            .expect("shared accuracy registry poisoned"))
    }

    /// Record (or merge) a single worker estimate backed by `samples` gold questions.
    ///
    /// Merging follows the same policy as [`absorb`](Self::absorb).
    pub fn record(&self, worker: WorkerId, accuracy: f64, samples: usize) {
        let mut single = AccuracyRegistry::new();
        single.set(worker, accuracy, samples);
        self.absorb(&single);
    }

    /// Merge a batch of estimates (typically one HIT's gold-sampling output) into the
    /// shared registry. Returns the number of workers whose entry changed.
    ///
    /// Per worker, the merge pools sample counts: an existing estimate backed by `s₁` gold
    /// questions and a new one backed by `s₂` combine into the sample-weighted mean backed
    /// by `s₁ + s₂`. Injected estimates (`samples == 0`, e.g. a simulation oracle) never
    /// displace sampled ones; among injected estimates the latest wins.
    pub fn absorb(&self, estimates: &AccuracyRegistry) -> usize {
        if estimates.is_empty() {
            return 0;
        }
        let mut state = self
            .inner
            .write()
            .expect("shared accuracy registry poisoned");
        let mut changed = 0usize;
        for (&worker, incoming) in estimates.iter() {
            let merged = match state.registry.get(worker) {
                None => Some((incoming.accuracy, incoming.samples)),
                Some(current) => {
                    let total = current.samples + incoming.samples;
                    if incoming.samples == 0 && current.samples > 0 {
                        None // a sampled estimate outranks an injected one
                    } else if total == 0 {
                        Some((incoming.accuracy, 0)) // both injected: latest wins
                    } else {
                        let pooled = (current.accuracy * current.samples as f64
                            + incoming.accuracy * incoming.samples as f64)
                            / total as f64;
                        Some((pooled, total))
                    }
                }
            };
            if let Some((accuracy, samples)) = merged {
                state.registry.set(worker, accuracy, samples);
                changed += 1;
            }
        }
        if changed > 0 {
            state.generation += 1;
        }
        changed
    }

    /// The current write generation (bumped on every mutating call that changed an entry).
    pub fn generation(&self) -> u64 {
        self.read(|s| s.generation)
    }

    /// An owned copy of the current registry contents.
    pub fn snapshot(&self) -> AccuracyRegistry {
        self.read(|s| s.registry.clone())
    }

    /// Number of workers with an estimate.
    pub fn len(&self) -> usize {
        self.read(|s| s.registry.len())
    }

    /// Whether no worker has an estimate yet.
    pub fn is_empty(&self) -> bool {
        self.read(|s| s.registry.is_empty())
    }

    /// The population mean `μ` over all shared estimates.
    pub fn mean_accuracy(&self) -> Option<f64> {
        self.read(|s| s.registry.mean_accuracy())
    }

    /// A worker's current shared estimate, if any.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        self.read(|s| s.registry.get(worker).map(|e| e.accuracy))
    }
}

/// A read-through cache over a [`SharedAccuracyRegistry`].
///
/// [`snapshot`](AccuracyCache::snapshot) returns the shared registry's contents. A read
/// only goes to the shared side (lock acquisition + rebuild of the local copy) when the
/// shared generation has advanced since the last read; otherwise it is served from the
/// local copy without touching the shared state at all. Batches that absorb new gold
/// estimates therefore miss, while batches that learned nothing new — gold-free jobs,
/// steady state after the crowd is fully estimated — hit. [`hits`](AccuracyCache::hits)
/// and [`misses`](AccuracyCache::misses) expose the cache's effectiveness for fleet
/// metrics.
#[derive(Debug)]
pub struct AccuracyCache {
    shared: SharedAccuracyRegistry,
    cached_generation: Cell<u64>,
    cached: RefCell<AccuracyRegistry>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl AccuracyCache {
    /// A cache over the given shared registry, initially empty (first read is a miss).
    pub fn new(shared: SharedAccuracyRegistry) -> Self {
        AccuracyCache {
            shared,
            cached_generation: Cell::new(NEVER),
            cached: RefCell::new(AccuracyRegistry::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The shared registry behind the cache (for absorbing new estimates).
    pub fn shared(&self) -> &SharedAccuracyRegistry {
        &self.shared
    }

    fn refresh(&self) {
        let generation = self.shared.generation();
        if self.cached_generation.get() == generation {
            self.hits.set(self.hits.get() + 1);
        } else {
            *self.cached.borrow_mut() = self.shared.snapshot();
            self.cached_generation.set(generation);
            self.misses.set(self.misses.get() + 1);
        }
    }

    /// The current registry contents, served from the cache when the shared generation has
    /// not moved since the last read.
    pub fn snapshot(&self) -> AccuracyRegistry {
        self.refresh();
        self.cached.borrow().clone()
    }

    /// A single worker's accuracy, read through the cache.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        self.refresh();
        self.cached.borrow().get(worker).map(|e| e.accuracy)
    }

    /// Number of reads served from the cached snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of reads that had to rebuild the snapshot from the shared registry.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Fraction of reads served from the cache (0 when nothing was read yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_registry() {
        let a = SharedAccuracyRegistry::new();
        let b = a.clone();
        assert!(a.is_empty());
        b.record(WorkerId(1), 0.8, 5);
        assert_eq!(a.len(), 1);
        assert_eq!(a.accuracy_of(WorkerId(1)), Some(0.8));
        assert_eq!(a.generation(), b.generation());
    }

    #[test]
    fn absorb_pools_samples_per_worker() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.6, 4);
        // A second job sees the same worker do better on 8 gold questions.
        let mut estimates = AccuracyRegistry::new();
        estimates.set(WorkerId(1), 0.9, 8);
        estimates.set(WorkerId(2), 0.7, 2);
        assert_eq!(shared.absorb(&estimates), 2);
        let snap = shared.snapshot();
        let w1 = snap.get(WorkerId(1)).unwrap();
        assert!((w1.accuracy - (0.6 * 4.0 + 0.9 * 8.0) / 12.0).abs() < 1e-12);
        assert_eq!(w1.samples, 12);
        assert_eq!(snap.get(WorkerId(2)).unwrap().samples, 2);
    }

    #[test]
    fn injected_estimates_never_displace_sampled_ones() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(1), 0.8, 6);
        let before = shared.generation();
        let mut oracle = AccuracyRegistry::new();
        oracle.set(WorkerId(1), 0.2, 0);
        assert_eq!(shared.absorb(&oracle), 0);
        assert_eq!(shared.accuracy_of(WorkerId(1)), Some(0.8));
        assert_eq!(shared.generation(), before, "no-op absorb must not bump");
        // But injected-over-injected updates in place.
        shared.record(WorkerId(2), 0.5, 0);
        shared.record(WorkerId(2), 0.6, 0);
        assert_eq!(shared.accuracy_of(WorkerId(2)), Some(0.6));
    }

    #[test]
    fn absorbing_nothing_is_free() {
        let shared = SharedAccuracyRegistry::new();
        let before = shared.generation();
        assert_eq!(shared.absorb(&AccuracyRegistry::new()), 0);
        assert_eq!(shared.generation(), before);
    }

    #[test]
    fn cache_serves_repeated_reads_without_rebuilding() {
        let shared = SharedAccuracyRegistry::new();
        shared.record(WorkerId(3), 0.75, 3);
        let cache = AccuracyCache::new(shared.clone());
        assert_eq!(cache.snapshot().len(), 1);
        assert_eq!(cache.accuracy_of(WorkerId(3)), Some(0.75));
        assert_eq!(cache.misses(), 1, "only the first read rebuilds");
        assert_eq!(cache.hits(), 1);
        // A write through any handle invalidates the cache.
        shared.record(WorkerId(4), 0.65, 2);
        assert_eq!(cache.snapshot().len(), 2);
        assert_eq!(cache.misses(), 2);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn seeded_registry_is_visible_immediately() {
        let mut seed = AccuracyRegistry::new();
        seed.set(WorkerId(9), 0.9, 10);
        let shared = SharedAccuracyRegistry::with_registry(seed);
        assert_eq!(shared.len(), 1);
        assert!((shared.mean_accuracy().unwrap() - 0.9).abs() < 1e-12);
    }
}
