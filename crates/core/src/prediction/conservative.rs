//! Theorem 3 of the paper: the conservative, Chernoff-bound-based worker estimate.
//!
//! By the Chernoff bound, `E[P_{n/2}] ≥ 1 − e^{−2n(μ−½)²}`; requiring the right-hand side
//! to reach the user accuracy `C` yields
//!
//! ```text
//! n ≥ −ln(1 − C) / (2 (μ − ½)²)
//! ```
//!
//! and, since the voting strategies want an odd `n`, the paper takes the smallest odd
//! integer no smaller than the bound: `2⌊−ln(1−C) / (4(μ−½)²)⌋ + 1`.

use crate::error::{CdasError, Result};

/// Conservative estimate of the number of workers needed to reach required accuracy `c`
/// when the mean worker accuracy is `mu` (Theorem 3). The result is always odd.
///
/// Errors when `c ∉ [0, 1)` or `mu ∉ (0.5, 1)`.
pub fn conservative_worker_estimate(c: f64, mu: f64) -> Result<u64> {
    validate(c, mu)?;
    let raw = -(1.0 - c).ln() / (2.0 * (mu - 0.5).powi(2));
    Ok(round_up_to_odd(raw))
}

/// The raw (real-valued) Chernoff bound `−ln(1−C) / (2(μ−½)²)` before odd rounding.
/// Exposed for the Figure 6 experiment, which plots the bound itself.
pub fn conservative_worker_bound(c: f64, mu: f64) -> Result<f64> {
    validate(c, mu)?;
    Ok(-(1.0 - c).ln() / (2.0 * (mu - 0.5).powi(2)))
}

/// The accuracy guaranteed by the Chernoff bound for a given odd `n`:
/// `1 − e^{−2n(μ−½)²}` (Theorem 2). Useful to sanity-check the estimate.
pub fn chernoff_accuracy_lower_bound(n: u64, mu: f64) -> f64 {
    1.0 - (-2.0 * n as f64 * (mu - 0.5).powi(2)).exp()
}

fn validate(c: f64, mu: f64) -> Result<()> {
    if !(0.0..1.0).contains(&c) || c.is_nan() {
        return Err(CdasError::InvalidRequiredAccuracy { required: c });
    }
    if !(mu > 0.5 && mu < 1.0) || mu.is_nan() {
        return Err(CdasError::InvalidMeanAccuracy { mu });
    }
    Ok(())
}

/// Smallest odd integer `≥ max(raw, 1)` — the paper's `2⌊raw/2⌋ + 1` applied to the
/// already-halved exponent is equivalent to rounding the bound up to the next odd number.
fn round_up_to_odd(raw: f64) -> u64 {
    let n = raw.ceil().max(1.0) as u64;
    if n % 2 == 1 {
        n
    } else {
        n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::binomial::expected_majority_probability;

    #[test]
    fn estimate_is_odd_and_positive() {
        for &c in &[0.0, 0.5, 0.65, 0.8, 0.95, 0.99] {
            for &mu in &[0.55, 0.7, 0.9] {
                let n = conservative_worker_estimate(c, mu).unwrap();
                assert!(n >= 1);
                assert_eq!(n % 2, 1);
            }
        }
    }

    #[test]
    fn estimate_grows_with_required_accuracy() {
        let mu = 0.7;
        let mut prev = 0;
        for i in 0..35 {
            let c = 0.6 + 0.01 * i as f64;
            let n = conservative_worker_estimate(c, mu).unwrap();
            assert!(n >= prev);
            prev = n;
        }
    }

    #[test]
    fn estimate_shrinks_with_better_workers() {
        let c = 0.95;
        let mut prev = u64::MAX;
        for i in 1..10 {
            let mu = 0.5 + 0.05 * i as f64;
            if mu >= 1.0 {
                break;
            }
            let n = conservative_worker_estimate(c, mu).unwrap();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn chernoff_bound_is_actually_conservative() {
        // The exact binomial expectation at the conservative n must reach C.
        for &c in &[0.65, 0.8, 0.9, 0.95, 0.99] {
            for &mu in &[0.6, 0.7, 0.8] {
                let n = conservative_worker_estimate(c, mu).unwrap();
                let exact = expected_majority_probability(n, mu);
                assert!(
                    exact >= c,
                    "conservative n={n} only achieves {exact} < {c} (mu={mu})"
                );
                // And the Chernoff lower bound itself reaches C as well.
                assert!(chernoff_accuracy_lower_bound(n, mu) >= c - 1e-12);
            }
        }
    }

    #[test]
    fn chernoff_lower_bound_is_below_exact_probability() {
        for &n in &[1u64, 5, 15, 45] {
            for &mu in &[0.6, 0.75, 0.9] {
                assert!(
                    chernoff_accuracy_lower_bound(n, mu)
                        <= expected_majority_probability(n, mu) + 1e-12
                );
            }
        }
    }

    #[test]
    fn matches_paper_magnitude() {
        // With μ ≈ 0.7 and C = 0.99 the paper's Figure 6 reports a conservative estimate of
        // roughly 110–120 workers; the formula gives −ln(0.01)/(2·0.04) ≈ 57.6 → ... the
        // figure uses the doubled odd form. Sanity-check the rounded value sits in a
        // plausible band rather than a specific number.
        let n = conservative_worker_estimate(0.99, 0.7).unwrap();
        assert!(
            (57..=121).contains(&n),
            "unexpected conservative estimate {n}"
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(conservative_worker_estimate(1.0, 0.7).is_err());
        assert!(conservative_worker_estimate(-0.1, 0.7).is_err());
        assert!(conservative_worker_estimate(0.9, 0.5).is_err());
        assert!(conservative_worker_estimate(0.9, 1.0).is_err());
        assert!(conservative_worker_bound(f64::NAN, 0.7).is_err());
    }

    #[test]
    fn round_up_to_odd_works() {
        assert_eq!(round_up_to_odd(0.2), 1);
        assert_eq!(round_up_to_odd(1.0), 1);
        assert_eq!(round_up_to_odd(1.1), 3);
        assert_eq!(round_up_to_odd(2.0), 3);
        assert_eq!(round_up_to_odd(7.0), 7);
        assert_eq!(round_up_to_odd(7.5), 9);
    }
}
