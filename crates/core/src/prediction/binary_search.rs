//! Algorithm 2 of the paper: refine the conservative estimate with a binary search over
//! odd worker counts against the exact binomial expectation (Algorithm 3).
//!
//! The Chernoff bound is loose for small `n`, so Theorem 3 over-provisions workers; the
//! binary search finds the *minimum odd* `n` with `E[P_{n/2}] ≥ C` inside the interval
//! `[1, conservative_estimate]`, typically cutting the worker count by more than half
//! (Figure 6).

use crate::error::{CdasError, Result};
use crate::prediction::binomial::expected_majority_probability;
use crate::prediction::conservative::conservative_worker_estimate;

/// Largest conservative upper bound the refinement will search below. Each probe of the
/// binary search evaluates the exact binomial expectation, which is O(n) in the worker
/// count, so an upper bound beyond this is not refinable in any reasonable time — and no
/// real platform could assign a million workers to one HIT anyway.
pub const MAX_REFINABLE_WORKERS: u64 = 1 << 20;

/// Minimum odd number of workers whose exact expected majority accuracy reaches `c`,
/// found by binary search over odd values in `[1, conservative_estimate]` (Algorithm 2).
///
/// Errors (like the conservative bound) on invalid `c` or `mu`, and additionally with
/// [`CdasError::WorkerEstimateOverflow`] when the two are individually valid but their
/// combination demands more than [`MAX_REFINABLE_WORKERS`] workers — e.g. a mean accuracy
/// barely above ½. The estimate used to be fed straight into the search, whose first
/// probe materializes one binomial term per worker: a degenerate-but-valid input such as
/// `(c, mu) = (0.99, 0.5 + 1e-10)` panicked the library with a `Vec` capacity overflow
/// instead of returning an error.
pub fn refined_worker_estimate(c: f64, mu: f64) -> Result<u64> {
    let upper = conservative_worker_estimate(c, mu)?;
    if upper > MAX_REFINABLE_WORKERS {
        return Err(CdasError::WorkerEstimateOverflow {
            required: c,
            mu,
            upper,
        });
    }
    Ok(binary_search_odd(c, mu, upper))
}

/// Binary search over odd `n ∈ [1, upper]` for the minimum `n` with `E[P_{n/2}] ≥ c`. If
/// even `upper` does not reach `c` (cannot happen when `upper` comes from the conservative
/// bound), `upper` is returned.
fn binary_search_odd(c: f64, mu: f64, upper: u64) -> u64 {
    // The search runs over the index space i where n = 2i + 1, which is only meaningful
    // for an odd, non-zero `upper`. The conservative bound always hands us one, but a
    // `debug_assert!` alone would let an even value through in release builds and silently
    // search the wrong index space (n = upper would map below the interval's top), so
    // round an even or zero upper up to the next odd instead.
    let upper = if upper % 2 == 0 { upper + 1 } else { upper };
    let mut lo = 0u64; // n = 1
    let mut hi = (upper - 1) / 2; // n = upper
    if expected_majority_probability(upper, mu) < c {
        return upper;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let n = 2 * mid + 1;
        if expected_majority_probability(n, mu) >= c {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    2 * lo + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::binomial::expected_majority_probability;

    /// Reference implementation: walk odd n upwards until the accuracy requirement holds.
    fn linear_scan(c: f64, mu: f64) -> u64 {
        let mut n = 1u64;
        loop {
            if expected_majority_probability(n, mu) >= c {
                return n;
            }
            n += 2;
            assert!(n < 100_000, "runaway scan");
        }
    }

    #[test]
    fn binary_search_agrees_with_linear_scan() {
        for &mu in &[0.55, 0.6, 0.7, 0.8, 0.9, 0.95] {
            for i in 0..8 {
                let c = 0.65 + 0.04 * i as f64;
                if c >= 1.0 {
                    continue;
                }
                assert_eq!(
                    refined_worker_estimate(c, mu).unwrap(),
                    linear_scan(c, mu),
                    "mismatch at c={c}, mu={mu}"
                );
            }
        }
    }

    #[test]
    fn result_is_minimal_and_sufficient() {
        let (c, mu) = (0.95, 0.7);
        let n = refined_worker_estimate(c, mu).unwrap();
        assert!(expected_majority_probability(n, mu) >= c);
        if n > 1 {
            assert!(expected_majority_probability(n - 2, mu) < c);
        }
    }

    #[test]
    fn one_worker_suffices_for_low_requirements() {
        // A single 0.9-accurate worker already gives 0.9 expected accuracy.
        assert_eq!(refined_worker_estimate(0.85, 0.9).unwrap(), 1);
        assert_eq!(refined_worker_estimate(0.0, 0.75).unwrap(), 1);
    }

    #[test]
    fn refined_is_substantially_below_conservative_for_high_accuracy() {
        // The headline observation of Figure 6: the refined estimate is far below the
        // conservative one for high required accuracies (the paper reports "less than
        // half" for its worker population; the exact ratio depends on μ).
        let mu = 0.7;
        for &c in &[0.9, 0.95, 0.99] {
            let cons = conservative_worker_estimate(c, mu).unwrap();
            let refined = refined_worker_estimate(c, mu).unwrap();
            assert!(
                refined as f64 <= 0.6 * cons as f64,
                "expected refined ({refined}) to be well below conservative ({cons}) at C={c}"
            );
        }
    }

    #[test]
    fn even_upper_is_rounded_up_not_mis_searched() {
        // An even upper used to be accepted silently in release builds (the guard was a
        // debug_assert!) and shifted the index space: with n = 2i + 1 and hi = (upper-1)/2,
        // the top candidate became upper − 1 and the "upper does not reach c" early return
        // probed an even worker count. Rounding up keeps every probe odd and the answer
        // identical to the legitimate odd interval.
        for &(c, mu) in &[(0.9, 0.7), (0.95, 0.7), (0.99, 0.8), (0.7, 0.55)] {
            let odd = linear_scan(c, mu);
            for upper in [odd, odd + 1, odd + 2, odd + 9, odd + 10] {
                assert_eq!(
                    binary_search_odd(c, mu, upper),
                    odd,
                    "upper={upper} (c={c}, mu={mu})"
                );
            }
        }
        // A zero upper (no interval at all) degrades to the single candidate n = 1.
        assert_eq!(binary_search_odd(0.5, 0.9, 0), 1);
        // An unreachable requirement still returns the (rounded) upper itself.
        assert_eq!(binary_search_odd(0.999_999, 0.55, 4), 5);
        assert_eq!(binary_search_odd(0.999_999, 0.55, 5), 5);
    }

    #[test]
    fn propagates_input_validation() {
        assert!(refined_worker_estimate(1.0, 0.7).is_err());
        assert!(refined_worker_estimate(0.9, 0.5).is_err());
    }

    #[test]
    fn degenerate_but_valid_inputs_error_instead_of_panicking() {
        // Regression: both inputs pass validation individually (c ∈ [0, 1), μ ∈ (0.5, 1)),
        // but the conservative bound −ln(1−C)/(2(μ−½)²) explodes to ~2·10²⁰ and saturates
        // to u64::MAX. The binary search's first probe then tried to materialize one
        // binomial log-term per worker — a ~10¹⁹-element Vec, i.e. a capacity-overflow
        // panic on the library path. The estimate must come back as an error the engine
        // can surface to the requester.
        let worst = refined_worker_estimate(0.99, 0.5 + 1e-10);
        match worst {
            Err(crate::error::CdasError::WorkerEstimateOverflow { upper, .. }) => {
                assert!(upper > MAX_REFINABLE_WORKERS);
            }
            other => panic!("expected WorkerEstimateOverflow, got {other:?}"),
        }
        // A merely-large-but-refinable bound still succeeds…
        assert!(refined_worker_estimate(0.99, 0.52).is_ok());
        // …and the overflow error also fires for a requirement pushed toward 1.
        assert!(matches!(
            refined_worker_estimate(1.0 - 1e-16, 0.500001),
            Err(crate::error::CdasError::WorkerEstimateOverflow { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The refined estimate is always odd, meets the requirement, and is minimal.
        #[test]
        fn refined_estimate_is_minimal_odd(c in 0.0f64..0.995, mu in 0.55f64..0.98) {
            let n = refined_worker_estimate(c, mu).unwrap();
            prop_assert_eq!(n % 2, 1);
            prop_assert!(expected_majority_probability(n, mu) >= c);
            if n > 1 {
                prop_assert!(expected_majority_probability(n - 2, mu) < c);
            }
        }

        /// Monotonicity: a stricter accuracy requirement never needs fewer workers.
        #[test]
        fn monotone_in_required_accuracy(c1 in 0.0f64..0.99, c2 in 0.0f64..0.99, mu in 0.55f64..0.95) {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let n_lo = refined_worker_estimate(lo, mu).unwrap();
            let n_hi = refined_worker_estimate(hi, mu).unwrap();
            prop_assert!(n_lo <= n_hi);
        }

        /// Monotonicity: better workers never increase the estimate.
        #[test]
        fn monotone_in_mean_accuracy(c in 0.6f64..0.99, mu1 in 0.55f64..0.95, mu2 in 0.55f64..0.95) {
            let (lo, hi) = if mu1 <= mu2 { (mu1, mu2) } else { (mu2, mu1) };
            let n_lo_mu = refined_worker_estimate(c, lo).unwrap();
            let n_hi_mu = refined_worker_estimate(c, hi).unwrap();
            prop_assert!(n_hi_mu <= n_lo_mu);
        }
    }
}
