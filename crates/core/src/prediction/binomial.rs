//! Algorithm 3 of the paper: `computeExpectedProb`, the exact binomial expectation
//! `E[P_{n/2}] = Σ_{k=⌈n/2⌉}^{n} C(n,k) μ^k (1−μ)^{n−k}` (Theorem 1).
//!
//! The paper evaluates the sum with a descending recurrence on the binomial term,
//! exploiting `C(n, k−1)/C(n, k) = k/(n−k+1)`; we follow the same O(n) scheme but start
//! from the *largest* term (at `k = n` the term is `μ^n`, which underflows for large `n`),
//! working in log space for the initial term so the estimate remains accurate up to
//! thousands of workers.

use crate::math::{ln_choose, log_sum_exp};

/// The expected probability that **at least `⌈n/2⌉`** of `n` workers (each independently
/// correct with probability `mu`) return the correct answer.
///
/// This is `E[P_{n/2}]` of Theorem 1. For odd `n` it is the expected accuracy of the
/// Half-Voting strategy; Theorem 4 shows it also lower-bounds the accuracy of the
/// probability-based verification model.
///
/// # Panics
/// Panics if `mu` is outside `[0, 1]` or `n == 0`.
pub fn expected_majority_probability(n: u64, mu: f64) -> f64 {
    assert!(n > 0, "need at least one worker");
    assert!(
        (0.0..=1.0).contains(&mu),
        "mean accuracy must be a probability, got {mu}"
    );
    if mu == 0.0 {
        return 0.0;
    }
    if mu == 1.0 {
        return 1.0;
    }
    // ⌈n/2⌉, then log-space evaluation of every tail term with a stable log-sum-exp:
    // O(n) like the paper's recurrence, but immune to underflow of μ^n.
    let start = n / 2 + (n % 2);
    let ln_mu = mu.ln();
    let ln_one_minus = (1.0 - mu).ln();
    let terms: Vec<f64> = (start..=n)
        .map(|k| ln_choose(n, k) + k as f64 * ln_mu + (n - k) as f64 * ln_one_minus)
        .collect();
    log_sum_exp(&terms).exp().min(1.0)
}

/// Literal transcription of the paper's Algorithm 3 (descending recurrence starting from
/// `δ = μ^x`). Kept for fidelity and used by the tests as a cross-check against the
/// log-space implementation; it loses precision once `μ^x` underflows (x ≳ 700 for
/// μ = 0.7), which is far beyond any realistic worker count.
pub fn expected_majority_probability_recurrence(x: u64, mu: f64) -> f64 {
    assert!(x > 0);
    assert!(
        (0.0..1.0).contains(&mu) && mu > 0.0,
        "recurrence needs mu in (0,1)"
    );
    let mut e = 0.0_f64;
    let mut delta = mu.powi(x as i32);
    let lower = x / 2 + (x % 2); // ⌈x/2⌉
    let mut i = x;
    loop {
        e += delta;
        if i == lower {
            break;
        }
        delta *= (1.0 - mu) * i as f64 / (mu * (x - i + 1) as f64);
        i -= 1;
    }
    e.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::binomial_tail;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !≈ {b}");
    }

    #[test]
    fn single_worker_equals_mu() {
        for &mu in &[0.55, 0.7, 0.95] {
            assert_close(expected_majority_probability(1, mu), mu, 1e-12);
        }
    }

    #[test]
    fn three_workers_closed_form() {
        // P[X ≥ 2] for X ~ Bin(3, μ) = 3μ²(1−μ) + μ³.
        for &mu in &[0.6f64, 0.75, 0.9] {
            let expect = 3.0 * mu * mu * (1.0 - mu) + mu.powi(3);
            assert_close(expected_majority_probability(3, mu), expect, 1e-12);
        }
    }

    #[test]
    fn matches_direct_binomial_tail() {
        for &n in &[1u64, 3, 5, 7, 15, 29, 101] {
            for &mu in &[0.51, 0.6, 0.75, 0.9, 0.99] {
                let tail = binomial_tail(n, n / 2 + n % 2, mu);
                assert_close(expected_majority_probability(n, mu), tail, 1e-9);
            }
        }
    }

    #[test]
    fn matches_paper_recurrence() {
        for &n in &[1u64, 3, 9, 29, 99] {
            for &mu in &[0.55, 0.7, 0.85] {
                assert_close(
                    expected_majority_probability(n, mu),
                    expected_majority_probability_recurrence(n, mu),
                    1e-9,
                );
            }
        }
    }

    #[test]
    fn even_n_uses_ceiling() {
        // For n = 2 the majority threshold is ⌈2/2⌉ = 1, i.e. P[X ≥ 1] = 1 − (1−μ)².
        let mu = 0.7;
        assert_close(
            expected_majority_probability(2, mu),
            1.0 - (1.0 - mu) * (1.0 - mu),
            1e-12,
        );
    }

    #[test]
    fn monotone_in_workers_for_odd_n() {
        let mu = 0.7;
        let mut prev = 0.0;
        for n in (1..60).step_by(2) {
            let p = expected_majority_probability(n, mu);
            assert!(p >= prev - 1e-12, "not monotone at n={n}: {p} < {prev}");
            prev = p;
        }
        assert!(prev > 0.99);
    }

    #[test]
    fn degenerate_mu() {
        assert_eq!(expected_majority_probability(9, 0.0), 0.0);
        assert_eq!(expected_majority_probability(9, 1.0), 1.0);
    }

    #[test]
    fn large_n_does_not_underflow() {
        let p = expected_majority_probability(2001, 0.55);
        assert!(p > 0.99 && p <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = expected_majority_probability(0, 0.7);
    }
}
