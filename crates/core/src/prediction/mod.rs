//! The **prediction model** (§3 of the paper): given the mean worker accuracy `μ` and a
//! user-required accuracy `C`, estimate the number of workers `n` to assign to a HIT.
//!
//! Two estimators are provided:
//!
//! * a **conservative** closed-form bound derived from the Chernoff bound (Theorem 3),
//!   implemented in [`conservative`], and
//! * a **refined** estimate that binary-searches the exact binomial expectation
//!   `E[P_{n/2}]` (Algorithms 2 and 3), implemented in [`binary_search`].
//!
//! The refined estimate is what CDAS uses in production; Figure 6 of the paper (and the
//! `fig6` experiment in `cdas-bench`) shows it needs fewer than half the workers of the
//! conservative bound across the whole accuracy range.

pub mod binary_search;
pub mod binomial;
pub mod conservative;

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};

pub use binary_search::refined_worker_estimate;
pub use binomial::expected_majority_probability;
pub use conservative::conservative_worker_estimate;

/// The prediction model: wraps the mean worker accuracy `μ` and exposes both estimators.
///
/// `μ` must exceed 0.5 — if the average worker is no better than random, a majority vote
/// can never be driven to an arbitrary accuracy by adding workers (Theorem 3's bound
/// diverges).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionModel {
    mu: f64,
}

impl PredictionModel {
    /// Create a model for a population whose mean accuracy is `mu`.
    pub fn new(mu: f64) -> Result<Self> {
        if !(mu > 0.5 && mu < 1.0) || mu.is_nan() {
            return Err(CdasError::InvalidMeanAccuracy { mu });
        }
        Ok(PredictionModel { mu })
    }

    /// The mean worker accuracy `μ` the model was built with.
    pub fn mean_accuracy(&self) -> f64 {
        self.mu
    }

    /// Conservative (Chernoff-bound) estimate of the number of workers needed for required
    /// accuracy `c` — Theorem 3. Always odd.
    pub fn conservative_workers(&self, c: f64) -> Result<u64> {
        conservative_worker_estimate(c, self.mu)
    }

    /// Refined estimate via binary search on the exact binomial expectation — Algorithm 2.
    /// Always odd, and never larger than the conservative estimate.
    pub fn refined_workers(&self, c: f64) -> Result<u64> {
        refined_worker_estimate(c, self.mu)
    }

    /// The expected probability `E[P_{n/2}]` that at least `⌈n/2⌉` of `n` workers answer
    /// correctly — Theorem 1 / Algorithm 3.
    pub fn expected_accuracy(&self, n: u64) -> Result<f64> {
        if n == 0 {
            return Err(CdasError::NonPositive {
                what: "worker count",
            });
        }
        Ok(expected_majority_probability(n, self.mu))
    }

    /// The function `g(C)` of §3.1: required accuracy → number of workers, using the
    /// refined estimator. Exposed separately because the economic model multiplies it with
    /// the per-HIT price.
    pub fn g(&self, c: f64) -> Result<u64> {
        self.refined_workers(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_rejects_bad_mu() {
        assert!(PredictionModel::new(0.5).is_err());
        assert!(PredictionModel::new(0.49).is_err());
        assert!(PredictionModel::new(1.0).is_err());
        assert!(PredictionModel::new(f64::NAN).is_err());
        assert!(PredictionModel::new(0.51).is_ok());
    }

    #[test]
    fn refined_never_exceeds_conservative() {
        let model = PredictionModel::new(0.7).unwrap();
        for i in 0..30 {
            let c = 0.65 + 0.01 * i as f64;
            let cons = model.conservative_workers(c).unwrap();
            let refined = model.refined_workers(c).unwrap();
            assert!(
                refined <= cons,
                "refined {refined} > conservative {cons} at C={c}"
            );
            assert_eq!(refined % 2, 1);
            assert_eq!(cons % 2, 1);
        }
    }

    #[test]
    fn refined_estimate_meets_required_accuracy() {
        let model = PredictionModel::new(0.72).unwrap();
        for &c in &[0.65, 0.8, 0.9, 0.95, 0.99] {
            let n = model.refined_workers(c).unwrap();
            let achieved = model.expected_accuracy(n).unwrap();
            assert!(
                achieved >= c,
                "n={n} achieves only {achieved} < required {c}"
            );
            // Minimality: two fewer workers must not be enough (unless n == 1).
            if n > 1 {
                let below = model.expected_accuracy(n - 2).unwrap();
                assert!(below < c, "n-2={} already achieves {below} ≥ {c}", n - 2);
            }
        }
    }

    #[test]
    fn expected_accuracy_rejects_zero_workers() {
        let model = PredictionModel::new(0.8).unwrap();
        assert!(model.expected_accuracy(0).is_err());
    }

    #[test]
    fn g_matches_refined() {
        let model = PredictionModel::new(0.75).unwrap();
        assert_eq!(model.g(0.9).unwrap(), model.refined_workers(0.9).unwrap());
    }

    #[test]
    fn higher_mu_needs_fewer_workers() {
        let low = PredictionModel::new(0.65).unwrap();
        let high = PredictionModel::new(0.85).unwrap();
        for &c in &[0.7, 0.8, 0.9, 0.95] {
            assert!(high.refined_workers(c).unwrap() <= low.refined_workers(c).unwrap());
        }
    }
}
