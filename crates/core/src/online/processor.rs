//! Algorithm 5: the online processing loop.
//!
//! The processor consumes one answer at a time (as the crowd platform delivers them),
//! refreshes the confidence of every distinct answer, and reports whether the configured
//! early-termination condition is satisfied. The engine uses it to (a) render approximate
//! results while the HIT is still running and (b) cancel the HIT as soon as the answer is
//! good enough, which caps the crowdsourcing cost.
//!
//! **Incremental accumulation.** The per-label summed log-odds that drive both the
//! ranking and the termination bounds are maintained as running state: consuming a vote
//! applies one `+=` delta instead of re-deriving every sum from the full observation
//! (which made each clocked poll O(n²) in the answers received). Because
//! [`summed_confidences`] itself folds votes in arrival order with the same `+=`, the
//! delta path is **bit-identical** to from-scratch recomputation — a property pinned by
//! the prefix-equality proptest below. The only event that invalidates the running sums
//! is a change of the effective answer-domain size `m` (possible in estimated-domain
//! mode when a vote introduces a new distinct label, since `m` reweights *every* vote);
//! the processor detects that and rebuilds the sums from the observation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};
use crate::online::partial::PartialConfidence;
use crate::online::termination::{TerminationConfig, TerminationStrategy};
use crate::types::{Label, Observation, Vote};
use crate::verification::confidence::{ranked_from_sums, summed_confidences, worker_confidence};

/// Snapshot of the online state after consuming an answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Current best answer and its confidence (`None` before the first answer).
    pub best: Option<(Label, f64)>,
    /// Confidence ranking over every observed answer, best first.
    pub ranking: Vec<(Label, f64)>,
    /// Number of answers consumed so far (`n′`).
    pub answers_received: usize,
    /// Whether the termination condition fired at (or before) this point.
    pub terminated: bool,
}

/// The online processor for a single question of a HIT (Algorithm 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineProcessor {
    termination: TerminationConfig,
    observation: Observation,
    terminated_at: Option<usize>,
    /// Running per-label summed confidences, valid for domain size `sums_domain`. One
    /// `+=` per consumed vote keeps this bit-identical to
    /// [`summed_confidences`]`(&observation, sums_domain)`.
    sums: BTreeMap<Label, f64>,
    /// The effective domain `m` the running sums were accumulated under. Starts at 0
    /// (below the minimum domain of 2), so the first vote always triggers a rebuild.
    sums_domain: usize,
}

impl OnlineProcessor {
    /// Create a processor for a HIT assigned to `assigned_workers` workers with population
    /// mean accuracy `mean_accuracy`, using the given termination strategy.
    pub fn new(
        assigned_workers: usize,
        mean_accuracy: f64,
        strategy: TerminationStrategy,
    ) -> Result<Self> {
        let partial = PartialConfidence::new(assigned_workers, mean_accuracy)?;
        Ok(OnlineProcessor {
            termination: TerminationConfig::new(strategy, partial),
            observation: Observation::empty(),
            terminated_at: None,
            sums: BTreeMap::new(),
            sums_domain: 0,
        })
    }

    /// Fix the answer-domain size `m` instead of estimating it per observation.
    pub fn with_domain_size(mut self, m: usize) -> Self {
        self.termination.partial = self.termination.partial.with_domain_size(m);
        // Changing `m` reweights every vote; invalidate the running sums so the next
        // consume rebuilds them (0 never equals an effective domain, which is ≥ 2).
        self.sums_domain = 0;
        self
    }

    /// The running per-label summed confidences (the delta-maintained log-odds state).
    ///
    /// Bit-identical to [`summed_confidences`] over [`observation`](Self::observation)
    /// at the current effective domain — the contract the prefix-equality proptests
    /// pin. Empty before the first answer.
    pub fn confidence_sums(&self) -> &BTreeMap<Label, f64> {
        &self.sums
    }

    /// The observation accumulated so far.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// Number of answers consumed.
    pub fn answers_received(&self) -> usize {
        self.observation.len()
    }

    /// The answer index (1-based) at which the termination condition first fired, if it
    /// has fired.
    pub fn terminated_at(&self) -> Option<usize> {
        self.terminated_at
    }

    /// Whether the termination condition has fired.
    pub fn is_terminated(&self) -> bool {
        self.terminated_at.is_some()
    }

    /// Consume one answer and return the refreshed outcome (one iteration of the
    /// `while not all answers are returned` loop of Algorithm 5).
    ///
    /// Answers arriving after termination are still folded into the confidence estimate
    /// (the platform may deliver them before the cancellation takes effect) but do not
    /// reset the termination point.
    pub fn consume(&mut self, vote: Vote) -> Result<OnlineOutcome> {
        let (label, accuracy) = (vote.label.clone(), vote.accuracy());
        self.observation.push(vote);
        let m = self.termination.partial.effective_domain(&self.observation);
        if m == self.sums_domain {
            // Delta path: `summed_confidences` folds votes in arrival order with this
            // same `+=`, so appending one term is bit-identical to recomputing.
            *self.sums.entry(label).or_insert(0.0) += worker_confidence(accuracy, m);
        } else {
            // The effective domain changed (first vote, or estimated-domain mode saw a
            // new distinct label): `m` reweights every vote, so rebuild from scratch.
            self.sums = summed_confidences(&self.observation, m);
            self.sums_domain = m;
        }
        let ranking = ranked_from_sums(&self.sums, m);
        if self.terminated_at.is_none()
            && self
                .termination
                .should_terminate_from_sums(&self.observation, &self.sums)?
        {
            self.terminated_at = Some(self.observation.len());
        }
        Ok(OnlineOutcome {
            best: ranking.first().cloned(),
            ranking,
            answers_received: self.observation.len(),
            terminated: self.is_terminated(),
        })
    }

    /// Current outcome without consuming a new answer.
    pub fn current(&self) -> Result<OnlineOutcome> {
        if self.observation.is_empty() {
            return Ok(OnlineOutcome {
                best: None,
                ranking: Vec::new(),
                answers_received: 0,
                terminated: false,
            });
        }
        let m = self.termination.partial.effective_domain(&self.observation);
        // After any consume the running sums match the observation; the from-scratch
        // fallback only covers a domain reconfigured since (e.g. `with_domain_size`).
        let ranking = if m == self.sums_domain {
            ranked_from_sums(&self.sums, m)
        } else {
            self.termination.partial.confidences(&self.observation)?
        };
        Ok(OnlineOutcome {
            best: ranking.first().cloned(),
            ranking,
            answers_received: self.observation.len(),
            terminated: self.is_terminated(),
        })
    }

    /// Run the processor over a full answer sequence, stopping at the first termination
    /// point, and return the final outcome together with the number of answers consumed.
    ///
    /// This is the batch counterpart used by the experiment harness; `consume` is the
    /// streaming interface used by the engine.
    pub fn run_until_termination(
        &mut self,
        answers: impl IntoIterator<Item = Vote>,
    ) -> Result<OnlineOutcome> {
        let mut last = self.current()?;
        for vote in answers {
            last = self.consume(vote)?;
            if last.terminated {
                break;
            }
        }
        if last.answers_received == 0 {
            return Err(CdasError::EmptyObservation);
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WorkerId;
    use crate::verification::confidence::answer_confidences;

    fn vote(i: u64, label: &str, accuracy: f64) -> Vote {
        Vote::new(WorkerId(i), Label::from(label), accuracy)
    }

    #[test]
    fn consumes_answers_and_tracks_best() {
        let mut p = OnlineProcessor::new(5, 0.75, TerminationStrategy::MinMax)
            .unwrap()
            .with_domain_size(3);
        assert_eq!(p.current().unwrap().answers_received, 0);
        let o1 = p.consume(vote(1, "pos", 0.8)).unwrap();
        assert_eq!(o1.best.as_ref().unwrap().0.as_str(), "pos");
        assert_eq!(o1.answers_received, 1);
        let o2 = p.consume(vote(2, "neg", 0.9)).unwrap();
        assert_eq!(o2.best.as_ref().unwrap().0.as_str(), "neg");
        assert_eq!(p.answers_received(), 2);
        assert_eq!(p.observation().len(), 2);
    }

    #[test]
    fn online_confidence_converges_to_offline() {
        // After all n answers arrive, the online ranking equals the offline Equation 4.
        let answers = vec![
            vote(1, "pos", 0.54),
            vote(2, "pos", 0.31),
            vote(3, "neu", 0.49),
            vote(4, "neg", 0.73),
            vote(5, "pos", 0.46),
        ];
        let mut p = OnlineProcessor::new(5, 0.5, TerminationStrategy::MinMax)
            .unwrap()
            .with_domain_size(3);
        let mut last = None;
        for a in answers.clone() {
            last = Some(p.consume(a).unwrap());
        }
        let offline = answer_confidences(&Observation::from_votes(answers), 3);
        assert_eq!(last.unwrap().ranking, offline);
    }

    #[test]
    fn termination_point_is_recorded_once() {
        let mut p = OnlineProcessor::new(5, 0.8, TerminationStrategy::ExpMax)
            .unwrap()
            .with_domain_size(3);
        let mut fired_at = None;
        for i in 0..5u64 {
            let o = p.consume(vote(i, "a", 0.9)).unwrap();
            if o.terminated && fired_at.is_none() {
                fired_at = Some(o.answers_received);
            }
        }
        assert!(
            fired_at.is_some(),
            "unanimous votes must eventually terminate"
        );
        assert_eq!(p.terminated_at(), fired_at);
        assert!(p.is_terminated());
        // ExpMax with strong agreement should fire before all 5 answers arrive.
        assert!(fired_at.unwrap() < 5);
    }

    #[test]
    fn run_until_termination_stops_early() {
        let answers: Vec<Vote> = (0..9).map(|i| vote(i, "a", 0.9)).collect();
        let mut p = OnlineProcessor::new(9, 0.75, TerminationStrategy::ExpMax)
            .unwrap()
            .with_domain_size(3);
        let outcome = p.run_until_termination(answers).unwrap();
        assert!(outcome.terminated);
        assert!(outcome.answers_received < 9, "should save workers");
        assert_eq!(outcome.best.unwrap().0.as_str(), "a");
    }

    #[test]
    fn run_until_termination_with_no_answers_is_an_error() {
        let mut p = OnlineProcessor::new(3, 0.75, TerminationStrategy::MinMax).unwrap();
        assert!(p.run_until_termination(Vec::new()).is_err());
    }

    #[test]
    fn conflicting_answers_delay_termination() {
        // Alternating answers keep the race close; MinMax must not fire early.
        let mut p = OnlineProcessor::new(9, 0.7, TerminationStrategy::MinMax)
            .unwrap()
            .with_domain_size(2);
        let labels = ["a", "b", "a", "b", "a", "b"];
        for (i, l) in labels.iter().enumerate() {
            let o = p.consume(vote(i as u64, l, 0.7)).unwrap();
            assert!(
                !o.terminated,
                "MinMax fired on a tied race after {} answers",
                i + 1
            );
        }
    }

    #[test]
    fn nan_accuracy_mid_stream_does_not_panic_the_processor() {
        // Regression for the termination-path NaN panic: a vote whose accuracy is NaN
        // (e.g. an upstream estimator dividing by zero) used to poison its label's summed
        // confidence and panic the ranking sort. The NaN now clamps to the neutral 0.5;
        // the processor must keep consuming and never rank the NaN label best.
        for strategy in TerminationStrategy::ALL {
            let mut p = OnlineProcessor::new(5, 0.75, strategy)
                .unwrap()
                .with_domain_size(3);
            p.consume(vote(0, "pos", 0.8)).unwrap();
            let o = p.consume(vote(1, "bad", f64::NAN)).unwrap();
            assert_eq!(o.best.as_ref().unwrap().0.as_str(), "pos");
            let o = p.consume(vote(2, "pos", 0.7)).unwrap();
            assert_eq!(o.best.unwrap().0.as_str(), "pos");
            assert_eq!(
                o.ranking.last().unwrap().0.as_str(),
                "bad",
                "the NaN-backed label ranks last"
            );
        }
    }

    #[test]
    fn strategies_order_by_aggressiveness_on_a_stream() {
        // On the same answer stream, MinMax terminates no earlier than MinExp and ExpMax.
        let answers: Vec<Vote> = vec![
            vote(0, "a", 0.85),
            vote(1, "a", 0.8),
            vote(2, "b", 0.6),
            vote(3, "a", 0.9),
            vote(4, "a", 0.85),
            vote(5, "a", 0.8),
            vote(6, "a", 0.8),
            vote(7, "a", 0.85),
            vote(8, "a", 0.8),
        ];
        let consumed = |strategy| {
            let mut p = OnlineProcessor::new(9, 0.75, strategy)
                .unwrap()
                .with_domain_size(3);
            p.run_until_termination(answers.clone())
                .unwrap()
                .answers_received
        };
        let minmax = consumed(TerminationStrategy::MinMax);
        let minexp = consumed(TerminationStrategy::MinExp);
        let expmax = consumed(TerminationStrategy::ExpMax);
        assert!(minexp <= minmax);
        assert!(expmax <= minmax);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::online::partial::PartialConfidence;
    use crate::types::{Observation, WorkerId};
    use crate::verification::confidence::answer_confidences;
    use proptest::prelude::*;

    /// A full arrival sequence: every assigned worker's vote, in arrival order, with
    /// accuracies strictly below the population mean the processor assumes. §4.2.2's
    /// stability argument completes `Ω′` with mean-accuracy workers, so it covers every
    /// real completion whose workers are no stronger than the mean.
    fn arrival_sequence() -> impl Strategy<Value = (Vec<Vote>, f64)> {
        let label = prop_oneof![Just("a"), Just("b"), Just("c")];
        (
            prop::collection::vec((label, 0.55f64..0.80), 3..15),
            0.80f64..0.95,
        )
            .prop_map(|(entries, mu)| {
                let votes = entries
                    .into_iter()
                    .enumerate()
                    .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(l), a))
                    .collect();
                (votes, mu)
            })
    }

    /// Assert that after every prefix of `votes`, the delta-maintained state of a
    /// processor equals from-scratch recomputation **bitwise**: running sums, ranking,
    /// and the termination decision. `domain` fixes `m` (the scheduler's usual mode);
    /// `None` estimates it per observation, exercising the rebuild-on-domain-change
    /// path every time a new distinct label arrives.
    fn assert_prefixes_match_from_scratch(
        votes: &[Vote],
        mu: f64,
        strategy: TerminationStrategy,
        domain: Option<usize>,
    ) {
        let n = votes.len();
        let mut partial = PartialConfidence::new(n, mu).unwrap();
        if let Some(m) = domain {
            partial = partial.with_domain_size(m);
        }
        let oracle = TerminationConfig::new(strategy, partial);

        let mut p = OnlineProcessor::new(n, mu, strategy).unwrap();
        if let Some(m) = domain {
            p = p.with_domain_size(m);
        }
        let mut oracle_terminated_at = None;
        for (i, vote) in votes.iter().enumerate() {
            let outcome = p.consume(vote.clone()).unwrap();
            let prefix = Observation::from_votes(votes[..=i].to_vec());
            let m = oracle.partial.effective_domain(&prefix);

            // The running sums are bit-identical to a from-scratch fold of the prefix.
            let scratch = crate::verification::confidence::summed_confidences(&prefix, m);
            prop_assert_eq!(
                p.confidence_sums(),
                &scratch,
                "sums diverged after {} votes (m={})",
                i + 1,
                m
            );
            // And so is everything derived from them: the ranking ...
            prop_assert_eq!(outcome.ranking, answer_confidences(&prefix, m));
            // ... and the termination decision, against the from-scratch oracle.
            if oracle_terminated_at.is_none() && oracle.should_terminate(&prefix).unwrap() {
                oracle_terminated_at = Some(i + 1);
            }
            prop_assert_eq!(p.terminated_at(), oracle_terminated_at);
        }
    }

    /// Arrival sequences over four labels so estimated-domain mode keeps discovering
    /// new distinct answers mid-stream (each discovery reweights every prior vote).
    fn mixed_label_sequence() -> impl Strategy<Value = (Vec<Vote>, f64)> {
        let label = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
        (
            prop::collection::vec((label, 0.55f64..0.95), 1..14),
            0.6f64..0.9,
        )
            .prop_map(|(entries, mu)| {
                let votes = entries
                    .into_iter()
                    .enumerate()
                    .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(l), a))
                    .collect();
                (votes, mu)
            })
    }

    proptest! {
        /// Satellite of the event-heap PR: the delta-applied log-odds state equals
        /// from-scratch recomputation after **every prefix** of an arrival sequence,
        /// for every termination strategy, in the scheduler's fixed-domain mode.
        #[test]
        fn incremental_sums_equal_from_scratch_on_every_prefix(
            (votes, mu) in mixed_label_sequence()
        ) {
            for strategy in TerminationStrategy::ALL {
                assert_prefixes_match_from_scratch(&votes, mu, strategy, Some(3));
            }
        }

        /// Same prefix equality with an **estimated** domain: new distinct labels bump
        /// `m` mid-stream, forcing the rebuild path, which must also match bitwise.
        #[test]
        fn incremental_sums_survive_domain_growth(
            (votes, mu) in mixed_label_sequence()
        ) {
            for strategy in TerminationStrategy::ALL {
                assert_prefixes_match_from_scratch(&votes, mu, strategy, None);
            }
        }
    }

    proptest! {
        /// The §4.2.2 stability guarantee, end to end: whenever MinMax fires before the
        /// last answer, the early verdict equals the offline verdict computed from the
        /// *complete* arrival sequence — terminating saved answers without changing the
        /// result the user would eventually have seen.
        #[test]
        fn minmax_early_verdict_equals_offline_verdict((votes, mu) in arrival_sequence()) {
            let n = votes.len();
            let mut p = OnlineProcessor::new(n, mu, TerminationStrategy::MinMax)
                .unwrap()
                .with_domain_size(3);
            let outcome = p.run_until_termination(votes.clone()).unwrap();
            if outcome.terminated && outcome.answers_received < n {
                let offline = answer_confidences(&Observation::from_votes(votes), 3);
                prop_assert_eq!(
                    outcome.best.unwrap().0,
                    offline[0].0.clone(),
                    "MinMax fired at {} of {} but the verdict flipped offline",
                    outcome.answers_received,
                    n
                );
            }
        }
    }
}
