//! Confidence of answers under a partial observation (§4.2.1).
//!
//! Theorem 6: when workers answer independently and answers arrive in random order, the
//! expected posterior over all possible completions of the remaining answers equals the
//! posterior computed from the partial observation alone, `ρ(r) = P(r | Ω′)`. The partial
//! confidence therefore reuses Equation 4; this module packages it together with the
//! bookkeeping needed by the termination strategies (how many answers are still missing
//! and what confidence an *unseen* average worker would carry).

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};
use crate::math::clamp_probability;
use crate::types::{Label, Observation};
use crate::verification::confidence::{answer_confidences, worker_confidence};
use crate::verification::domain::DomainEstimator;

/// Confidence computation over a partial observation `Ω′` of a HIT assigned to `n` workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialConfidence {
    /// Total number of workers the HIT was assigned to (`n`).
    pub assigned_workers: usize,
    /// Mean accuracy `E[a_i]` assumed for the workers that have not answered yet.
    pub mean_accuracy: f64,
    /// Domain-size estimator (or fixed size) used in Equation 4.
    pub domain: DomainEstimator,
    fixed_domain: Option<usize>,
}

impl PartialConfidence {
    /// Create a partial-confidence computation for a HIT assigned to `assigned_workers`
    /// workers whose population mean accuracy is `mean_accuracy`.
    pub fn new(assigned_workers: usize, mean_accuracy: f64) -> Result<Self> {
        if assigned_workers == 0 {
            return Err(CdasError::NonPositive {
                what: "assigned workers",
            });
        }
        if !(0.0..=1.0).contains(&mean_accuracy) || mean_accuracy.is_nan() {
            return Err(CdasError::InvalidWorkerAccuracy {
                accuracy: mean_accuracy,
            });
        }
        Ok(PartialConfidence {
            assigned_workers,
            mean_accuracy: clamp_probability(mean_accuracy),
            domain: DomainEstimator::new(),
            fixed_domain: None,
        })
    }

    /// Use a fixed answer-domain size instead of estimating it per observation.
    pub fn with_domain_size(mut self, m: usize) -> Self {
        self.fixed_domain = Some(m.max(2));
        self.domain = DomainEstimator::with_declared_size(m);
        self
    }

    /// The effective domain size `m` for an observation.
    pub fn effective_domain(&self, observation: &Observation) -> usize {
        match self.fixed_domain {
            Some(m) => m,
            None => self.domain.estimate(observation.distinct_answers()),
        }
    }

    /// Number of answers still outstanding for this HIT.
    pub fn remaining(&self, observation: &Observation) -> usize {
        self.assigned_workers.saturating_sub(observation.len())
    }

    /// `ρ(r) = P(r | Ω′)` for every observed answer (Theorem 6), best first.
    pub fn confidences(&self, observation: &Observation) -> Result<Vec<(Label, f64)>> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        Ok(answer_confidences(
            observation,
            self.effective_domain(observation),
        ))
    }

    /// The confidence weight `c̄ = ln((m−1)·E[a]/(1−E[a]))` carried by one not-yet-seen
    /// worker, used by the extreme-case bounds of the termination strategies.
    pub fn unseen_worker_confidence(&self, observation: &Observation) -> f64 {
        worker_confidence(self.mean_accuracy, self.effective_domain(observation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Vote, WorkerId};

    fn obs(entries: &[(&str, f64)]) -> Observation {
        Observation::from_votes(
            entries
                .iter()
                .enumerate()
                .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(*l), *a))
                .collect(),
        )
    }

    #[test]
    fn construction_validation() {
        assert!(PartialConfidence::new(0, 0.7).is_err());
        assert!(PartialConfidence::new(5, 1.5).is_err());
        assert!(PartialConfidence::new(5, f64::NAN).is_err());
        assert!(PartialConfidence::new(5, 0.7).is_ok());
    }

    #[test]
    fn partial_equals_offline_equation_4() {
        // Theorem 6: the partial confidence is just Equation 4 on the received votes.
        let pc = PartialConfidence::new(9, 0.75).unwrap().with_domain_size(3);
        let observation = obs(&[("pos", 0.8), ("neg", 0.6), ("pos", 0.7)]);
        let partial = pc.confidences(&observation).unwrap();
        let offline = answer_confidences(&observation, 3);
        assert_eq!(partial, offline);
    }

    #[test]
    fn remaining_counts_down() {
        let pc = PartialConfidence::new(5, 0.7).unwrap();
        let mut observation = Observation::empty();
        assert_eq!(pc.remaining(&observation), 5);
        observation.push(Vote::new(WorkerId(0), Label::from("a"), 0.7));
        assert_eq!(pc.remaining(&observation), 4);
        for i in 1..7 {
            observation.push(Vote::new(WorkerId(i), Label::from("a"), 0.7));
        }
        // More answers than assigned (platform over-delivery) never underflows.
        assert_eq!(pc.remaining(&observation), 0);
    }

    #[test]
    fn unseen_worker_confidence_uses_mean_accuracy() {
        let pc = PartialConfidence::new(5, 0.8).unwrap().with_domain_size(3);
        let observation = obs(&[("a", 0.9)]);
        let c = pc.unseen_worker_confidence(&observation);
        assert!((c - worker_confidence(0.8, 3)).abs() < 1e-12);
    }

    #[test]
    fn empty_observation_has_no_confidences() {
        let pc = PartialConfidence::new(5, 0.7).unwrap();
        assert!(pc.confidences(&Observation::empty()).is_err());
    }

    #[test]
    fn effective_domain_estimated_when_not_fixed() {
        let pc = PartialConfidence::new(5, 0.7).unwrap();
        let observation = obs(&[("a", 0.8), ("b", 0.7), ("c", 0.9), ("d", 0.6)]);
        assert!(pc.effective_domain(&observation) >= 4);
        let fixed = PartialConfidence::new(5, 0.7).unwrap().with_domain_size(4);
        assert_eq!(fixed.effective_domain(&observation), 4);
    }
}
