//! Online processing (§4.2): produce an approximate answer from a *partial* observation
//! and terminate the HIT early once the answer can no longer change (or is unlikely to).
//!
//! * [`partial`] — confidence of answers under a partial observation (Theorem 6 shows the
//!   offline Equation 4 applies unchanged).
//! * [`termination`] — the MinMax / MinExp / ExpMax early-termination conditions built on
//!   the extreme-case bounds of Equations 5 and 6.
//! * [`processor`] — Algorithm 5: the loop that consumes answers one at a time, updates
//!   confidences and stops as soon as the termination condition fires.

pub mod partial;
pub mod processor;
pub mod termination;

pub use partial::PartialConfidence;
pub use processor::{OnlineOutcome, OnlineProcessor};
pub use termination::{TerminationConfig, TerminationStrategy};
