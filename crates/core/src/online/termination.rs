//! Early termination of a HIT (§4.2.2).
//!
//! Let `r₁` and `r₂` be the best and second-best answers under the partial observation
//! `Ω′`, and suppose the `n − n′` outstanding workers all voted for `r₂` with the
//! population-mean accuracy (the adversarial completion `s` of Equations 5–6). Then
//!
//! * `min P(r₁|Ω) = P(r₁|Ω′, s)` — the worst the leader can end up with, and
//! * `max P(r₂|Ω) = P(r₂|Ω′, s)` — the best the runner-up can reach.
//!
//! The three strategies compare different combinations of these extremes with the current
//! confidences:
//!
//! | strategy | condition                         | character                            |
//! |----------|-----------------------------------|--------------------------------------|
//! | MinMax   | `min P(r₁) > max P(r₂)`           | result provably stable, conservative |
//! | MinExp   | `min P(r₁) > P(r₂|Ω′)`            | aggressive, may mis-terminate        |
//! | ExpMax   | `P(r₁|Ω′) > max P(r₂)`            | aggressive, the paper's recommendation |

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};
use crate::math::log_sum_exp;
use crate::online::partial::PartialConfidence;
use crate::types::{Label, Observation};
use crate::verification::confidence::summed_confidences;

/// The three early-termination strategies of §4.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationStrategy {
    /// Terminate only when the current leader is guaranteed to stay the leader.
    MinMax,
    /// Terminate when the leader's worst case still beats the runner-up's current value.
    MinExp,
    /// Terminate when the leader's current value beats the runner-up's best case.
    /// This is the strategy the paper recommends (Figure 12/13).
    ExpMax,
}

impl TerminationStrategy {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [TerminationStrategy; 3] = [
        TerminationStrategy::MinExp,
        TerminationStrategy::MinMax,
        TerminationStrategy::ExpMax,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            TerminationStrategy::MinMax => "MinMax",
            TerminationStrategy::MinExp => "MinExp",
            TerminationStrategy::ExpMax => "ExpMax",
        }
    }
}

/// The extreme-case probabilities computed from a partial observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerminationBounds {
    /// The current leader `r₁`.
    pub best: Label,
    /// The current runner-up `r₂` (an unobserved answer when only one answer was seen).
    pub second: Option<Label>,
    /// `P(r₁ | Ω′)` — current confidence of the leader.
    pub best_current: f64,
    /// `P(r₂ | Ω′)` — current confidence of the runner-up.
    pub second_current: f64,
    /// `E[min P(r₁ | Ω)]` — leader's confidence if every outstanding worker votes `r₂`.
    pub best_worst_case: f64,
    /// `E[max P(r₂ | Ω)]` — runner-up's confidence in the same completion.
    pub second_best_case: f64,
    /// Number of outstanding answers the bounds account for.
    pub remaining: usize,
}

/// Configuration for evaluating termination conditions on a HIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TerminationConfig {
    /// Which strategy to apply.
    pub strategy: TerminationStrategy,
    /// Partial-confidence settings (assigned workers, mean accuracy, domain).
    pub partial: PartialConfidence,
}

impl TerminationConfig {
    /// Build a configuration.
    pub fn new(strategy: TerminationStrategy, partial: PartialConfidence) -> Self {
        TerminationConfig { strategy, partial }
    }

    /// Compute the extreme-case bounds (Equations 5–6) for the current observation.
    ///
    /// Requires at least one received answer. This recomputes the per-label summed
    /// confidences from scratch; incremental consumers that already maintain them (the
    /// [`OnlineProcessor`](crate::online::processor::OnlineProcessor) delta path) use
    /// [`bounds_from_sums`](Self::bounds_from_sums) instead. The two are bit-identical
    /// — this from-scratch form is the oracle the incremental path is property-tested
    /// against.
    pub fn bounds(&self, observation: &Observation) -> Result<TerminationBounds> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let m = self.partial.effective_domain(observation);
        let sums = summed_confidences(observation, m);
        self.bounds_from_sums(observation, &sums)
    }

    /// [`bounds`](Self::bounds) over **precomputed** summed confidences.
    ///
    /// `sums` must be the per-label summed confidences of `observation` under its
    /// current [`PartialConfidence::effective_domain`] — exactly what
    /// [`summed_confidences`] returns, or what an incremental accumulator maintains by
    /// applying one `+=` delta per vote (the two agree bitwise because
    /// [`summed_confidences`] itself folds votes in arrival order).
    pub fn bounds_from_sums(
        &self,
        observation: &Observation,
        sums: &BTreeMap<Label, f64>,
    ) -> Result<TerminationBounds> {
        if observation.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let m = self.partial.effective_domain(observation);
        let remaining = self.partial.remaining(observation);
        let unseen_confidence = self.partial.unseen_worker_confidence(observation);
        let ranked = rank(sums);
        // Non-empty observation (checked above) means at least one label.
        let (best, _best_sum) = ranked.first().cloned().ok_or(CdasError::EmptyObservation)?;
        // The runner-up is the second observed answer; when every vote agrees, the
        // adversarial completion targets a fresh (never observed) answer with sum 0.
        let (second, second_sum) = ranked
            .get(1)
            .cloned()
            .map(|(l, s)| (Some(l), s))
            .unwrap_or((None, 0.0));

        let current = current_probabilities(sums, m, &best, second.as_ref());
        // Adversarial completion: the remaining workers all vote for the runner-up.
        let boosted_second_sum = second_sum + remaining as f64 * unseen_confidence;
        let worst = completed_probabilities(sums, m, second.as_ref(), boosted_second_sum, &best);

        Ok(TerminationBounds {
            best,
            second,
            best_current: current.0,
            second_current: current.1,
            best_worst_case: worst.0,
            second_best_case: worst.1,
            remaining,
        })
    }

    /// Whether the configured strategy allows terminating the HIT now.
    ///
    /// With no outstanding answers the HIT is complete and this always returns `true`.
    /// Like [`bounds`](Self::bounds) this is the from-scratch form; incremental
    /// consumers use [`should_terminate_from_sums`](Self::should_terminate_from_sums).
    pub fn should_terminate(&self, observation: &Observation) -> Result<bool> {
        self.decide(self.bounds(observation)?)
    }

    /// [`should_terminate`](Self::should_terminate) over precomputed summed
    /// confidences — see [`bounds_from_sums`](Self::bounds_from_sums) for the contract
    /// on `sums`.
    pub fn should_terminate_from_sums(
        &self,
        observation: &Observation,
        sums: &BTreeMap<Label, f64>,
    ) -> Result<bool> {
        self.decide(self.bounds_from_sums(observation, sums)?)
    }

    /// Apply the configured strategy to already-computed bounds.
    fn decide(&self, bounds: TerminationBounds) -> Result<bool> {
        if bounds.remaining == 0 {
            return Ok(true);
        }
        Ok(match self.strategy {
            TerminationStrategy::MinMax => bounds.best_worst_case > bounds.second_best_case,
            TerminationStrategy::MinExp => bounds.best_worst_case > bounds.second_current,
            TerminationStrategy::ExpMax => bounds.best_current > bounds.second_best_case,
        })
    }
}

/// Sort summed confidences descending (ties by label order). The shared total comparator
/// keeps a NaN summed confidence — a degenerate accuracy that slipped past clamping — from
/// panicking the online path mid-HIT: NaN sums order last, never leading.
fn rank(sums: &BTreeMap<Label, f64>) -> Vec<(Label, f64)> {
    let mut v: Vec<(Label, f64)> = sums.iter().map(|(l, s)| (l.clone(), *s)).collect();
    crate::verification::confidence::sort_by_confidence_desc(&mut v);
    v
}

/// `(P(best|Ω′), P(second|Ω′))` under the current observation.
fn current_probabilities(
    sums: &BTreeMap<Label, f64>,
    m: usize,
    best: &Label,
    second: Option<&Label>,
) -> (f64, f64) {
    let k = sums.len();
    let m = m.max(k).max(2);
    let mut terms: Vec<f64> = sums.values().copied().collect();
    if m > k {
        terms.push(((m - k) as f64).ln());
    }
    let denom = log_sum_exp(&terms);
    let p_best = (sum_of(sums, best) - denom).exp();
    let p_second = match second {
        Some(l) => (sum_of(sums, l) - denom).exp(),
        // Unobserved runner-up: summed confidence 0 → weight e^0 = 1.
        None => (0.0 - denom).exp(),
    };
    (p_best, p_second)
}

/// Summed confidence of `label`, treating an absent label as `-inf` (weight
/// `e^{-inf} = 0`). `best`/`second` always come from `sums`' own keys, so the
/// fallback only guards against a caller passing a foreign label.
fn sum_of(sums: &BTreeMap<Label, f64>, label: &Label) -> f64 {
    sums.get(label).copied().unwrap_or(f64::NEG_INFINITY)
}

/// `(min P(best|Ω), max P(second|Ω))` under the adversarial completion in which every
/// outstanding worker votes for the runner-up, raising its summed confidence to
/// `boosted_second_sum`.
fn completed_probabilities(
    sums: &BTreeMap<Label, f64>,
    m: usize,
    second: Option<&Label>,
    boosted_second_sum: f64,
    best: &Label,
) -> (f64, f64) {
    let k_observed = sums.len();
    // If the runner-up is a never-observed answer, it becomes observed in the completion.
    let k = if second.is_some() {
        k_observed
    } else {
        k_observed + 1
    };
    let m = m.max(k).max(2);
    let mut terms: Vec<f64> = Vec::with_capacity(k + 1);
    for (label, &s) in sums {
        if Some(label) == second {
            terms.push(boosted_second_sum);
        } else {
            terms.push(s);
        }
    }
    if second.is_none() {
        terms.push(boosted_second_sum);
    }
    if m > k {
        terms.push(((m - k) as f64).ln());
    }
    let denom = log_sum_exp(&terms);
    let p_best = (sum_of(sums, best) - denom).exp();
    let p_second = (boosted_second_sum - denom).exp();
    (p_best, p_second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Vote, WorkerId};

    fn obs(entries: &[(&str, f64)]) -> Observation {
        Observation::from_votes(
            entries
                .iter()
                .enumerate()
                .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(*l), *a))
                .collect(),
        )
    }

    fn config(strategy: TerminationStrategy, n: usize, mu: f64) -> TerminationConfig {
        TerminationConfig::new(
            strategy,
            PartialConfidence::new(n, mu).unwrap().with_domain_size(3),
        )
    }

    #[test]
    fn strategy_names() {
        assert_eq!(TerminationStrategy::MinMax.name(), "MinMax");
        assert_eq!(TerminationStrategy::MinExp.name(), "MinExp");
        assert_eq!(TerminationStrategy::ExpMax.name(), "ExpMax");
        assert_eq!(TerminationStrategy::ALL.len(), 3);
    }

    #[test]
    fn bounds_require_an_answer() {
        let cfg = config(TerminationStrategy::MinMax, 5, 0.75);
        assert!(cfg.bounds(&Observation::empty()).is_err());
    }

    #[test]
    fn bounds_are_consistent() {
        let cfg = config(TerminationStrategy::MinMax, 9, 0.75);
        let observation = obs(&[("pos", 0.8), ("pos", 0.7), ("neg", 0.75)]);
        let b = cfg.bounds(&observation).unwrap();
        assert_eq!(b.best.as_str(), "pos");
        assert_eq!(b.second.as_ref().unwrap().as_str(), "neg");
        assert_eq!(b.remaining, 6);
        // Worst case for the leader is no better than its current confidence.
        assert!(b.best_worst_case <= b.best_current + 1e-12);
        // Best case for the runner-up is no worse than its current confidence.
        assert!(b.second_best_case >= b.second_current - 1e-12);
        // All values are probabilities.
        for v in [
            b.best_current,
            b.second_current,
            b.best_worst_case,
            b.second_best_case,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn complete_observation_always_terminates() {
        let cfg = config(TerminationStrategy::MinMax, 3, 0.75);
        let observation = obs(&[("pos", 0.8), ("neg", 0.7), ("pos", 0.75)]);
        assert!(cfg.should_terminate(&observation).unwrap());
        let b = cfg.bounds(&observation).unwrap();
        assert_eq!(b.remaining, 0);
    }

    #[test]
    fn minmax_is_most_conservative() {
        // Whenever MinMax fires, the two aggressive strategies must fire as well.
        let scenarios: Vec<Vec<(&str, f64)>> = vec![
            vec![("a", 0.9)],
            vec![("a", 0.9), ("a", 0.85)],
            vec![("a", 0.9), ("b", 0.6)],
            vec![("a", 0.9), ("a", 0.9), ("b", 0.6)],
            vec![("a", 0.95), ("a", 0.95), ("a", 0.95), ("b", 0.55)],
            vec![("a", 0.7), ("b", 0.7), ("a", 0.7), ("a", 0.75), ("a", 0.8)],
        ];
        for n in [5usize, 9, 15] {
            for s in &scenarios {
                let observation = obs(s);
                if observation.len() > n {
                    continue;
                }
                let minmax = config(TerminationStrategy::MinMax, n, 0.75)
                    .should_terminate(&observation)
                    .unwrap();
                let minexp = config(TerminationStrategy::MinExp, n, 0.75)
                    .should_terminate(&observation)
                    .unwrap();
                let expmax = config(TerminationStrategy::ExpMax, n, 0.75)
                    .should_terminate(&observation)
                    .unwrap();
                if minmax {
                    assert!(minexp, "MinMax fired but MinExp did not (n={n}, {s:?})");
                    assert!(expmax, "MinMax fired but ExpMax did not (n={n}, {s:?})");
                }
            }
        }
    }

    #[test]
    fn single_early_answer_does_not_trigger_minmax() {
        // One answer out of 15: the remaining 14 workers could easily overturn it.
        let cfg = config(TerminationStrategy::MinMax, 15, 0.75);
        let observation = obs(&[("a", 0.9)]);
        assert!(!cfg.should_terminate(&observation).unwrap());
    }

    #[test]
    fn overwhelming_lead_triggers_all_strategies() {
        // 8 high-accuracy identical votes with only 1 outstanding answer.
        let entries: Vec<(&str, f64)> = (0..8).map(|_| ("a", 0.9)).collect();
        let observation = obs(&entries);
        for strategy in TerminationStrategy::ALL {
            let cfg = config(strategy, 9, 0.75);
            assert!(
                cfg.should_terminate(&observation).unwrap(),
                "{} should fire with 8/9 identical votes",
                strategy.name()
            );
        }
    }

    #[test]
    fn nan_accuracy_does_not_panic_the_online_path() {
        // A NaN accuracy used to survive probability clamping (`f64::clamp` propagates
        // NaN), poison its label's summed confidence, and panic `rank`'s partial_cmp
        // mid-HIT. Two layers defend now: clamping maps NaN to the information-free 0.5,
        // and the ranking comparators are total (NaN orders last). Either way the online
        // path must keep answering and never crown a NaN-backed label.
        for strategy in TerminationStrategy::ALL {
            let cfg = config(strategy, 9, 0.75);
            let observation = obs(&[("pos", 0.8), ("bad", f64::NAN), ("pos", 0.7)]);
            let bounds = cfg.bounds(&observation).unwrap();
            assert_eq!(
                bounds.best.as_str(),
                "pos",
                "a NaN-backed label must never lead"
            );
            // The decision completes without panicking; its value is strategy-dependent.
            cfg.should_terminate(&observation).unwrap();
        }
        // All-NaN evidence still ranks deterministically (by label order) and never panics.
        let cfg = config(TerminationStrategy::MinMax, 5, 0.75);
        let observation = obs(&[("a", f64::NAN), ("b", f64::NAN)]);
        let bounds = cfg.bounds(&observation).unwrap();
        assert_eq!(bounds.best.as_str(), "a");
        cfg.should_terminate(&observation).unwrap();
        // Second layer, exercised directly: even a NaN that reaches the sums (bypassing
        // vote clamping entirely) must sort last instead of panicking.
        let mut sums = BTreeMap::new();
        sums.insert(Label::from("nanny"), f64::NAN);
        sums.insert(Label::from("solid"), 1.5);
        let ranked = rank(&sums);
        assert_eq!(ranked[0].0.as_str(), "solid");
        assert!(ranked[1].1.is_nan());
    }

    #[test]
    fn minmax_guarantees_stability() {
        // If MinMax fires, no completion of the remaining answers can change the winner:
        // simulate the adversarial completion explicitly and check the winner is unchanged.
        let n = 7usize;
        let observation = obs(&[("a", 0.9), ("a", 0.85), ("a", 0.8), ("b", 0.6)]);
        let cfg = config(TerminationStrategy::MinMax, n, 0.75);
        if cfg.should_terminate(&observation).unwrap() {
            // Adversarial completion: all remaining workers vote "b" with mean accuracy.
            let mut completed = observation.clone();
            for i in 0..(n - observation.len()) {
                completed.push(Vote::new(WorkerId(100 + i as u64), Label::from("b"), 0.75));
            }
            let ranked = crate::verification::confidence::answer_confidences(&completed, 3);
            assert_eq!(
                ranked[0].0.as_str(),
                "a",
                "MinMax terminated but the answer flipped"
            );
        } else {
            panic!("expected MinMax to fire in this scenario");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::{Vote, WorkerId};
    use proptest::prelude::*;

    fn arbitrary_partial() -> impl Strategy<Value = (Observation, usize)> {
        let label = prop_oneof![Just("a"), Just("b"), Just("c")];
        (
            prop::collection::vec((label, 0.55f64..0.95), 1..10),
            10usize..20,
        )
            .prop_map(|(entries, n)| {
                let observation = Observation::from_votes(
                    entries
                        .into_iter()
                        .enumerate()
                        .map(|(i, (l, a))| Vote::new(WorkerId(i as u64), Label::from(l), a))
                        .collect(),
                );
                (observation, n)
            })
    }

    proptest! {
        /// MinMax is the most conservative strategy: it never fires when the others don't.
        #[test]
        fn minmax_implies_others((observation, n) in arbitrary_partial(), mu in 0.6f64..0.9) {
            let partial = PartialConfidence::new(n, mu).unwrap().with_domain_size(3);
            let fire = |s| TerminationConfig::new(s, partial).should_terminate(&observation).unwrap();
            if fire(TerminationStrategy::MinMax) {
                prop_assert!(fire(TerminationStrategy::MinExp));
                prop_assert!(fire(TerminationStrategy::ExpMax));
            }
        }

        /// Bounds always bracket the current confidences.
        #[test]
        fn bounds_bracket_current((observation, n) in arbitrary_partial(), mu in 0.6f64..0.9) {
            let partial = PartialConfidence::new(n, mu).unwrap().with_domain_size(3);
            let cfg = TerminationConfig::new(TerminationStrategy::MinMax, partial);
            let b = cfg.bounds(&observation).unwrap();
            prop_assert!(b.best_worst_case <= b.best_current + 1e-9);
            prop_assert!(b.second_best_case >= b.second_current - 1e-9);
        }

        /// The sums-accepting variants (the incremental hot path) equal the from-scratch
        /// forms bit for bit, for every strategy.
        #[test]
        fn sums_variants_match_from_scratch((observation, n) in arbitrary_partial(), mu in 0.6f64..0.9) {
            let partial = PartialConfidence::new(n, mu).unwrap().with_domain_size(3);
            for strategy in TerminationStrategy::ALL {
                let cfg = TerminationConfig::new(strategy, partial);
                let m = cfg.partial.effective_domain(&observation);
                let sums = summed_confidences(&observation, m);
                prop_assert_eq!(
                    cfg.bounds_from_sums(&observation, &sums).unwrap(),
                    cfg.bounds(&observation).unwrap()
                );
                prop_assert_eq!(
                    cfg.should_terminate_from_sums(&observation, &sums).unwrap(),
                    cfg.should_terminate(&observation).unwrap()
                );
            }
        }

        /// If MinMax fires, the adversarial completion cannot flip the winner.
        #[test]
        fn minmax_stability((observation, n) in arbitrary_partial(), mu in 0.6f64..0.9) {
            let partial = PartialConfidence::new(n, mu).unwrap().with_domain_size(3);
            let cfg = TerminationConfig::new(TerminationStrategy::MinMax, partial);
            if observation.len() < n && cfg.should_terminate(&observation).unwrap() {
                let bounds = cfg.bounds(&observation).unwrap();
                let mut completed = observation.clone();
                let target = bounds.second.clone().unwrap_or_else(|| Label::from("z"));
                for i in 0..(n - observation.len()) {
                    completed.push(Vote::new(WorkerId(1000 + i as u64), target.clone(), mu));
                }
                let ranked = crate::verification::confidence::answer_confidences(&completed, 3);
                prop_assert_eq!(ranked[0].0.clone(), bounds.best);
            }
        }
    }
}
