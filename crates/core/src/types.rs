//! Fundamental vocabulary types shared by every component of the answering model.
//!
//! The model reasons about *workers* answering *questions* with *labels* drawn from an
//! *answer domain*; a set of `(worker, label, accuracy)` triples for one question is an
//! [`Observation`] (the `Ω` of the paper's Equation 1).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::math::clamp_probability;

/// Identifier of a human worker, unique within a crowd platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a single question inside a HIT (one tweet, one image, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QuestionId(pub u64);

impl fmt::Display for QuestionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a HIT (Human Intelligence Task) published to the crowd platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HitId(pub u64);

impl fmt::Display for HitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hit{}", self.0)
    }
}

/// A categorical answer label (e.g. `"Positive"`, `"Negative"`, an image tag, ...).
///
/// Labels are immutable and cheap to clone (`Arc<str>` internally) because the verification
/// model copies them into score tables, rankings and presentation layers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Create a label from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Label(Arc::from(s.as_ref()))
    }

    /// View the label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared empty-label sentinel, for total accessors that must return
    /// *some* label when a ranking is unexpectedly empty.
    pub fn none() -> &'static Label {
        static NONE: std::sync::OnceLock<Label> = std::sync::OnceLock::new();
        NONE.get_or_init(|| Label::new(""))
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(s)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Serialize for Label {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Label {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Label::new(s))
    }
}

/// The domain `R` of possible answers for a question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerDomain {
    labels: Vec<Label>,
}

impl AnswerDomain {
    /// Build a domain from an ordered list of labels. Duplicate labels are removed while
    /// preserving the first occurrence's position.
    pub fn new(labels: impl IntoIterator<Item = Label>) -> Self {
        let mut seen = Vec::new();
        for l in labels {
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
        AnswerDomain { labels: seen }
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(labels: &[&str]) -> Self {
        AnswerDomain::new(labels.iter().map(|s| Label::from(*s)))
    }

    /// Number of possible answers, the `|R| = m` of the paper.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Whether the domain contains the given label.
    pub fn contains(&self, label: &Label) -> bool {
        self.labels.contains(label)
    }

    /// Iterate over the labels in their declared order.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }

    /// The label at a given index, if any.
    pub fn get(&self, idx: usize) -> Option<&Label> {
        self.labels.get(idx)
    }
}

/// One worker's answer to one question, together with the engine's current estimate of that
/// worker's accuracy (obtained from sampling, see [`crate::sampling`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vote {
    /// Who answered.
    pub worker: WorkerId,
    /// The answer they gave.
    pub label: Label,
    /// The worker's estimated accuracy `a_j`, clamped into the open interval `(0, 1)`.
    accuracy: f64,
    /// Optional free-text keywords the worker supplied as the *reason* for the answer
    /// (used by the presentation layer, §4.3 of the paper).
    pub keywords: Vec<String>,
}

impl Vote {
    /// Create a vote; the accuracy is clamped into `(0, 1)` so downstream log-odds stay
    /// finite.
    pub fn new(worker: WorkerId, label: Label, accuracy: f64) -> Self {
        Vote {
            worker,
            label,
            accuracy: clamp_probability(accuracy),
            keywords: Vec::new(),
        }
    }

    /// Attach reason keywords to the vote.
    pub fn with_keywords(mut self, keywords: impl IntoIterator<Item = String>) -> Self {
        self.keywords = keywords.into_iter().collect();
        self
    }

    /// The worker's estimated accuracy `a_j ∈ (0, 1)`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

/// The observation `Ω` for one question: the set of votes received so far.
///
/// An observation may be *partial* (online processing, §4.2): the number of workers the HIT
/// was assigned to can exceed the number of votes collected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    votes: Vec<Vote>,
}

impl Observation {
    /// An observation with no votes yet.
    pub fn empty() -> Self {
        Observation { votes: Vec::new() }
    }

    /// Build an observation from a list of votes.
    pub fn from_votes(votes: Vec<Vote>) -> Self {
        Observation { votes }
    }

    /// Append one vote (used by the online processor as answers arrive).
    pub fn push(&mut self, vote: Vote) {
        self.votes.push(vote);
    }

    /// Number of votes received, the `n'` of §4.2.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// Whether no votes have been received yet.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Iterate over the votes in arrival order.
    pub fn votes(&self) -> &[Vote] {
        &self.votes
    }

    /// Number of *distinct* labels observed, the `k` used by the domain-size estimator.
    pub fn distinct_answers(&self) -> usize {
        let mut labels: Vec<&Label> = self.votes.iter().map(|v| &v.label).collect();
        labels.sort();
        labels.dedup();
        labels.len()
    }

    /// Vote counts per label, ordered by label for deterministic iteration.
    pub fn tally(&self) -> BTreeMap<Label, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.votes {
            *counts.entry(v.label.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// The mean accuracy of the workers that have voted so far.
    ///
    /// Returns `None` for an empty observation.
    pub fn mean_accuracy(&self) -> Option<f64> {
        if self.votes.is_empty() {
            return None;
        }
        Some(self.votes.iter().map(|v| v.accuracy()).sum::<f64>() / self.votes.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrips_and_displays() {
        let l = Label::from("Positive");
        assert_eq!(l.as_str(), "Positive");
        assert_eq!(l.to_string(), "Positive");
        assert_eq!(l, Label::from(String::from("Positive")));
        assert_ne!(l, Label::from("Negative"));
    }

    #[test]
    fn label_is_cheap_to_clone() {
        let l = Label::from("Neutral");
        let l2 = l.clone();
        // Arc-backed: both point at the same allocation.
        assert_eq!(l.as_str().as_ptr(), l2.as_str().as_ptr());
    }

    #[test]
    fn answer_domain_deduplicates() {
        let d = AnswerDomain::from_strs(&["pos", "neg", "pos", "neu"]);
        assert_eq!(d.size(), 3);
        assert!(d.contains(&Label::from("neu")));
        assert!(!d.contains(&Label::from("meh")));
        assert_eq!(d.get(0), Some(&Label::from("pos")));
        assert_eq!(d.get(3), None);
        assert_eq!(d.labels().count(), 3);
    }

    #[test]
    fn vote_clamps_accuracy() {
        let v = Vote::new(WorkerId(1), Label::from("pos"), 1.0);
        assert!(v.accuracy() < 1.0);
        let v = Vote::new(WorkerId(1), Label::from("pos"), 0.0);
        assert!(v.accuracy() > 0.0);
        let v = Vote::new(WorkerId(1), Label::from("pos"), 0.8);
        assert_eq!(v.accuracy(), 0.8);
    }

    #[test]
    fn vote_keywords_are_attached() {
        let v = Vote::new(WorkerId(7), Label::from("pos"), 0.9)
            .with_keywords(vec!["siri".to_string(), "ios".to_string()]);
        assert_eq!(v.keywords, vec!["siri", "ios"]);
    }

    #[test]
    fn observation_tally_and_distinct() {
        let mut obs = Observation::empty();
        assert!(obs.is_empty());
        assert_eq!(obs.mean_accuracy(), None);
        obs.push(Vote::new(WorkerId(1), Label::from("pos"), 0.6));
        obs.push(Vote::new(WorkerId(2), Label::from("neg"), 0.8));
        obs.push(Vote::new(WorkerId(3), Label::from("pos"), 0.7));
        assert_eq!(obs.len(), 3);
        assert_eq!(obs.distinct_answers(), 2);
        let tally = obs.tally();
        assert_eq!(tally[&Label::from("pos")], 2);
        assert_eq!(tally[&Label::from("neg")], 1);
        let mean = obs.mean_accuracy().unwrap();
        assert!((mean - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(WorkerId(3).to_string(), "w3");
        assert_eq!(QuestionId(5).to_string(), "q5");
        assert_eq!(HitId(9).to_string(), "hit9");
    }
}
