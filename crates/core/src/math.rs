//! Numerically careful helpers shared by the prediction and verification models.
//!
//! The answering model works with products of many per-worker probabilities
//! (Equation 3 of the paper) and with binomial tails (Theorem 1); both are computed in
//! log space to avoid underflow once tens of workers are involved.

/// Natural logarithm of the Gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), which is accurate to roughly
/// 15 significant digits over the range used by this crate (binomial coefficients for at
/// most a few thousand workers).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, kept verbatim from the published table (the extra
    // digits round away in f64 but make the table checkable against the source).
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    // The constant term seeds the accumulator; the remaining coefficients are
    // each divided by a shifted argument.
    let mut coeffs = COEFFS.iter().enumerate();
    let mut acc = coeffs.next().map_or(0.0, |(_, &c)| c);
    for (i, &c) in coeffs {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Stable `log(Σ exp(x_i))` over a slice of log-space values.
///
/// Empty input yields negative infinity (the log of zero).
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// The `k`-th harmonic number `H_k = Σ_{i=1..k} 1/i`, with `H_0 = 0`.
///
/// Used by the answer-domain-size bound (Lemma 1 / Theorem 5 of the paper).
pub fn harmonic(k: u64) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

/// Probability mass function of the binomial distribution, `P[X = k]` for
/// `X ~ Binomial(n, p)`, computed in log space.
///
/// A probability outside `[0, 1]` (or NaN) has no binomial interpretation and
/// yields `f64::NAN` rather than panicking — a shard thread must never abort
/// on bad estimator output, and NaN propagates loudly through any sum.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let log_pmf = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    log_pmf.exp()
}

/// Upper-tail probability of the binomial distribution, `P[X ≥ k]`.
///
/// This is the quantity `E[P_{n/2}]` of Theorem 1 when `k = ⌈n/2⌉`; it is used by the
/// tests as an independent reference for Algorithm 3's recurrence-based computation.
///
/// Inherits [`binomial_pmf`]'s contract: a probability outside `[0, 1]` (or
/// NaN) yields NaN rather than panicking. Debug builds assert early so the
/// bad estimate is caught at the call site instead of surfacing as a NaN sum
/// far downstream.
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&p),
        "binomial_tail requires p in [0, 1], got {p}"
    );
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum::<f64>().min(1.0)
}

/// Clamp a probability into the open interval `(ε, 1−ε)` so that log-odds stay finite.
///
/// The verification model divides by `1 − a_j` and takes logarithms of `a_j`; workers with
/// a perfect (or zero) sampled accuracy would otherwise produce infinities that swamp every
/// other vote. The paper caches `ln(a_j / (1 − a_j))` per worker, which implicitly assumes
/// the same clamping.
///
/// A NaN probability (an upstream estimator dividing by zero) maps to `0.5` — the
/// information-free coin flip — instead of propagating: `f64::clamp` passes NaN through,
/// and one NaN log-odds used to poison every summed confidence of its HIT and panic the
/// online termination path's ranking.
pub fn clamp_probability(p: f64) -> f64 {
    const EPS: f64 = 1e-9;
    if p.is_nan() {
        return 0.5;
    }
    p.clamp(EPS, 1.0 - EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {a} ≈ {b} within {tol} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let factorials = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in factorials.iter().enumerate() {
            assert_close(ln_gamma(n as f64 + 1.0), f64::ln(f), 1e-9);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
        // Γ(3/2) = √π / 2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_choose_small_values() {
        assert_close(ln_choose(5, 2), 10f64.ln(), 1e-12);
        assert_close(ln_choose(10, 5), 252f64.ln(), 1e-10);
        assert_close(ln_choose(0, 0), 0.0, 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in 1..40u64 {
            for k in 0..=n {
                assert_close(ln_choose(n, k), ln_choose(n, n - k), 1e-9);
            }
        }
    }

    #[test]
    fn log_sum_exp_basic() {
        assert_close(log_sum_exp(&[0.0, 0.0]), 2f64.ln(), 1e-12);
        assert_close(log_sum_exp(&[1.0]), 1.0, 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_handles_large_magnitudes() {
        // Naive exp would overflow; the stable version must not.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert_close(v, 1000.0 + 2f64.ln(), 1e-9);
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert_close(v, -1000.0 + 2f64.ln(), 1e-9);
    }

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert_close(harmonic(1), 1.0, 1e-12);
        assert_close(harmonic(4), 1.0 + 0.5 + 1.0 / 3.0 + 0.25, 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.1, 0.37, 0.5, 0.73, 0.99] {
            for &n in &[1u64, 2, 7, 30, 101] {
                let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
                assert_close(total, 1.0, 1e-9);
            }
        }
    }

    #[test]
    fn binomial_pmf_degenerate_probabilities() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 9, 1.0), 0.0);
        assert_eq!(binomial_pmf(10, 11, 0.5), 0.0);
        assert!(binomial_pmf(10, 5, -0.1).is_nan());
        assert!(binomial_pmf(10, 5, 1.5).is_nan());
        assert!(binomial_pmf(10, 5, f64::NAN).is_nan());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "binomial_tail requires p in [0, 1]")]
    fn binomial_tail_asserts_valid_p_in_debug_builds() {
        // Release builds propagate NaN per the documented contract; debug
        // builds catch the bad estimate at the call site.
        let _ = binomial_tail(10, 5, 1.5);
    }

    #[test]
    fn binomial_tail_monotone_in_p() {
        // P[X ≥ k] grows with p.
        let mut prev = 0.0;
        for i in 1..10 {
            let p = i as f64 / 10.0;
            let tail = binomial_tail(15, 8, p);
            assert!(tail >= prev, "tail should be monotone in p");
            prev = tail;
        }
    }

    #[test]
    fn binomial_tail_fair_coin_is_half_plus_mode() {
        // For odd n and p = 0.5, P[X ≥ ⌈n/2⌉] = 0.5 exactly (by symmetry).
        for &n in &[1u64, 3, 5, 9, 21, 49] {
            assert_close(binomial_tail(n, n / 2 + 1, 0.5), 0.5, 1e-9);
        }
    }

    #[test]
    fn clamp_probability_keeps_interior_points() {
        assert_eq!(clamp_probability(0.5), 0.5);
        assert!(clamp_probability(0.0) > 0.0);
        assert!(clamp_probability(1.0) < 1.0);
    }

    #[test]
    fn clamp_probability_neutralizes_nan() {
        assert_eq!(clamp_probability(f64::NAN), 0.5);
    }
}
