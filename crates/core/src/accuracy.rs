//! Worker-accuracy bookkeeping: per-worker estimates and population statistics.
//!
//! The prediction model (§3) only needs the population mean `μ`; the verification model
//! (§4) needs the individual accuracy `a_j` of every worker that voted. Both are served by
//! [`AccuracyRegistry`], which the engine populates from the sampling estimator
//! ([`crate::sampling`]) or, in simulations, directly from the crowd model.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{CdasError, Result};
use crate::math::clamp_probability;
use crate::types::WorkerId;

/// Population-level statistics over worker accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// Mean accuracy `μ` over the population.
    pub mean: f64,
    /// Unbiased sample variance of the accuracies (0 for fewer than two workers).
    pub variance: f64,
    /// Smallest observed accuracy.
    pub min: f64,
    /// Largest observed accuracy.
    pub max: f64,
    /// Number of workers the statistics were computed from.
    pub count: usize,
}

impl AccuracyStats {
    /// Compute statistics from a slice of accuracies.
    ///
    /// Returns an error when the slice is empty or any accuracy lies outside `[0, 1]`.
    pub fn from_accuracies(accuracies: &[f64]) -> Result<Self> {
        if accuracies.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        for &a in accuracies {
            if !(0.0..=1.0).contains(&a) || a.is_nan() {
                return Err(CdasError::InvalidWorkerAccuracy { accuracy: a });
            }
        }
        let count = accuracies.len();
        let mean = accuracies.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            accuracies.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let min = accuracies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accuracies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(AccuracyStats {
            mean,
            variance,
            min,
            max,
            count,
        })
    }

    /// Standard deviation of the accuracies.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Registry of per-worker accuracy estimates with a population mean.
///
/// The registry also caches the worker's log-odds `ln(a_j / (1 − a_j))`, mirroring the
/// paper's remark that the confidence term can be cached per known worker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRegistry {
    entries: BTreeMap<WorkerId, WorkerAccuracy>,
    /// Accuracy assumed for a worker the registry has never seen.
    default_accuracy: Option<f64>,
}

/// A single worker's accuracy estimate together with the cached log-odds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerAccuracy {
    /// Estimated probability of the worker answering correctly.
    pub accuracy: f64,
    /// Cached `ln(a / (1 − a))`, the worker-specific part of the confidence in Definition 2.
    pub log_odds: f64,
    /// How many gold (sample) questions the estimate is based on; zero when the estimate
    /// was injected directly (e.g. from a simulation oracle).
    pub samples: usize,
}

impl WorkerAccuracy {
    /// Build an estimate from an accuracy value, clamping it into `(0, 1)`.
    pub fn new(accuracy: f64, samples: usize) -> Self {
        let a = clamp_probability(accuracy);
        WorkerAccuracy {
            accuracy: a,
            log_odds: (a / (1.0 - a)).ln(),
            samples,
        }
    }
}

impl AccuracyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the accuracy assumed for workers that have never been sampled.
    pub fn with_default_accuracy(mut self, accuracy: f64) -> Self {
        self.default_accuracy = Some(clamp_probability(accuracy));
        self
    }

    /// Record (or overwrite) a worker's accuracy estimate.
    pub fn set(&mut self, worker: WorkerId, accuracy: f64, samples: usize) {
        self.entries
            .insert(worker, WorkerAccuracy::new(accuracy, samples));
    }

    /// Look up a worker's estimate.
    pub fn get(&self, worker: WorkerId) -> Option<&WorkerAccuracy> {
        self.entries.get(&worker)
    }

    /// The accuracy used for a worker: their estimate if known, otherwise the default, and
    /// finally the population mean if no default was configured.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        if let Some(e) = self.entries.get(&worker) {
            return Some(e.accuracy);
        }
        if let Some(d) = self.default_accuracy {
            return Some(d);
        }
        self.stats().ok().map(|s| s.mean)
    }

    /// The configured fallback accuracy for unknown workers, if any.
    pub fn default_accuracy(&self) -> Option<f64> {
        self.default_accuracy
    }

    /// Number of workers with an estimate.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no estimates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(worker, estimate)` pairs in worker-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&WorkerId, &WorkerAccuracy)> {
        self.entries.iter()
    }

    /// Population statistics over all recorded estimates.
    pub fn stats(&self) -> Result<AccuracyStats> {
        let accuracies: Vec<f64> = self.entries.values().map(|e| e.accuracy).collect();
        AccuracyStats::from_accuracies(&accuracies)
    }

    /// The population mean `μ`, or the configured default when the registry is empty.
    pub fn mean_accuracy(&self) -> Option<f64> {
        if self.entries.is_empty() {
            self.default_accuracy
        } else {
            self.stats().ok().map(|s| s.mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = AccuracyStats::from_accuracies(&[0.5, 0.7, 0.9]).unwrap();
        assert!((s.mean - 0.7).abs() < 1e-12);
        assert!((s.variance - 0.04).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.9);
        assert_eq!(s.count, 3);
        assert!((s.std_dev() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stats_single_worker_has_zero_variance() {
        let s = AccuracyStats::from_accuracies(&[0.8]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn stats_rejects_empty_and_out_of_range() {
        assert_eq!(
            AccuracyStats::from_accuracies(&[]),
            Err(CdasError::EmptyObservation)
        );
        assert!(matches!(
            AccuracyStats::from_accuracies(&[0.5, 1.5]),
            Err(CdasError::InvalidWorkerAccuracy { .. })
        ));
        assert!(matches!(
            AccuracyStats::from_accuracies(&[-0.1]),
            Err(CdasError::InvalidWorkerAccuracy { .. })
        ));
    }

    #[test]
    fn worker_accuracy_caches_log_odds() {
        let w = WorkerAccuracy::new(0.8, 10);
        assert!((w.log_odds - (0.8f64 / 0.2).ln()).abs() < 1e-12);
        assert_eq!(w.samples, 10);
        // Extreme accuracies are clamped so the log-odds stay finite.
        let w = WorkerAccuracy::new(1.0, 5);
        assert!(w.log_odds.is_finite());
    }

    #[test]
    fn registry_lookup_and_fallbacks() {
        let mut r = AccuracyRegistry::new().with_default_accuracy(0.6);
        assert!(r.is_empty());
        assert_eq!(r.accuracy_of(WorkerId(1)), Some(0.6));
        r.set(WorkerId(1), 0.9, 20);
        r.set(WorkerId(2), 0.7, 20);
        assert_eq!(r.len(), 2);
        assert_eq!(r.accuracy_of(WorkerId(1)), Some(0.9));
        assert_eq!(r.accuracy_of(WorkerId(99)), Some(0.6));
        assert!((r.mean_accuracy().unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.get(WorkerId(2)).unwrap().samples, 20);
    }

    #[test]
    fn registry_without_default_falls_back_to_mean() {
        let mut r = AccuracyRegistry::new();
        assert_eq!(r.accuracy_of(WorkerId(5)), None);
        r.set(WorkerId(1), 0.6, 1);
        r.set(WorkerId(2), 0.8, 1);
        let a = r.accuracy_of(WorkerId(5)).unwrap();
        assert!((a - 0.7).abs() < 1e-12);
    }
}
