//! Sampling-based worker-accuracy estimation (§3.3, Algorithm 4).
//!
//! Crowd platforms either hide worker statistics or expose an *approval rate* that does not
//! reflect accuracy on the task at hand (Figure 14). CDAS therefore embeds `αB` *gold*
//! questions with known ground truth into every HIT of `B` questions; each worker's
//! accuracy is estimated as their fraction of correct answers on the gold questions.
//!
//! This module provides
//!
//! * [`SamplingPlan`] — which positions of a HIT batch carry gold questions,
//! * [`SamplingEstimator`] — the per-worker accuracy bookkeeping of Algorithm 4, and
//! * [`SamplingReport`] — the aggregate view consumed by the prediction model (mean `μ`)
//!   and the experiment harness (Figure 15: mean accuracy and mean absolute error per
//!   sampling rate).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::accuracy::{AccuracyRegistry, AccuracyStats};
use crate::error::{CdasError, Result};
use crate::types::{Label, QuestionId, WorkerId};

/// Default sampling rate α used by the paper's deployment (20 %).
pub const DEFAULT_SAMPLING_RATE: f64 = 0.2;

/// Default HIT batch size B used by the paper's deployment (100 questions).
pub const DEFAULT_BATCH_SIZE: usize = 100;

/// Which positions of a `batch_size`-question HIT are gold (testing) questions.
///
/// Positions are spread evenly across the batch so a worker cannot learn that e.g. "the
/// first questions are the tests"; the engine may additionally shuffle question order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    batch_size: usize,
    gold_positions: Vec<usize>,
}

impl SamplingPlan {
    /// Create a plan injecting `⌈rate · batch_size⌉` gold questions into a batch.
    ///
    /// Errors when the rate is outside `(0, 1]` or the batch is empty.
    pub fn new(batch_size: usize, rate: f64) -> Result<Self> {
        if batch_size == 0 {
            return Err(CdasError::NonPositive { what: "batch size" });
        }
        if !(rate > 0.0 && rate <= 1.0) || rate.is_nan() {
            return Err(CdasError::InvalidSamplingRate { rate });
        }
        let count = ((batch_size as f64 * rate).ceil() as usize).clamp(1, batch_size);
        // Evenly spread positions: position i gets the slot round(i * B / count).
        let gold_positions: Vec<usize> = (0..count).map(|i| (i * batch_size) / count).collect();
        Ok(SamplingPlan {
            batch_size,
            gold_positions,
        })
    }

    /// The paper's default plan: B = 100, α = 0.2.
    pub fn paper_default() -> Self {
        // Mirrors `new(DEFAULT_BATCH_SIZE, DEFAULT_SAMPLING_RATE)` without a
        // panicking `expect`: the constants are valid by construction, and
        // `paper_default_matches_new` pins the two paths to stay equal.
        let count = ((DEFAULT_BATCH_SIZE as f64 * DEFAULT_SAMPLING_RATE).ceil() as usize)
            .clamp(1, DEFAULT_BATCH_SIZE);
        let gold_positions = (0..count)
            .map(|i| (i * DEFAULT_BATCH_SIZE) / count)
            .collect();
        SamplingPlan {
            batch_size: DEFAULT_BATCH_SIZE,
            gold_positions,
        }
    }

    /// Number of questions in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of gold questions in the batch (`αB`).
    pub fn gold_count(&self) -> usize {
        self.gold_positions.len()
    }

    /// Number of real (non-gold) questions in the batch (`(1−α)B`).
    pub fn real_count(&self) -> usize {
        self.batch_size - self.gold_count()
    }

    /// Whether the question at `position` is a gold question.
    pub fn is_gold(&self, position: usize) -> bool {
        self.gold_positions.binary_search(&position).is_ok()
    }

    /// The gold positions, ascending.
    pub fn gold_positions(&self) -> &[usize] {
        &self.gold_positions
    }

    /// The effective sampling rate `gold_count / batch_size`.
    pub fn rate(&self) -> f64 {
        self.gold_count() as f64 / self.batch_size as f64
    }
}

/// Per-worker accuracy estimation from gold questions (Algorithm 4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SamplingEstimator {
    tallies: BTreeMap<WorkerId, GoldTally>,
}

/// Gold-question tally for one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldTally {
    /// Gold questions answered correctly.
    pub correct: usize,
    /// Gold questions answered in total.
    pub total: usize,
}

impl GoldTally {
    /// The estimated accuracy `correct / total`, or `None` before any gold answer.
    pub fn accuracy(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.correct as f64 / self.total as f64)
        }
    }

    /// The Laplace-smoothed estimate `(correct + 1) / (total + 2)` the verification model
    /// weights votes with (see [`SamplingEstimator::to_registry`] for why raw fractions
    /// are unsafe as log-odds weights), or `None` before any gold answer.
    pub fn smoothed_accuracy(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some((self.correct as f64 + 1.0) / (self.total as f64 + 2.0))
        }
    }
}

impl SamplingEstimator {
    /// An estimator with no recorded answers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a worker's answer to a gold question with known `ground_truth`
    /// (the inner loop of Algorithm 4).
    pub fn record(
        &mut self,
        worker: WorkerId,
        _question: QuestionId,
        answer: &Label,
        ground_truth: &Label,
    ) {
        let tally = self.tallies.entry(worker).or_default();
        tally.total += 1;
        if answer == ground_truth {
            tally.correct += 1;
        }
    }

    /// The tally of one worker.
    pub fn tally(&self, worker: WorkerId) -> Option<GoldTally> {
        self.tallies.get(&worker).copied()
    }

    /// The estimated accuracy of one worker.
    pub fn accuracy_of(&self, worker: WorkerId) -> Option<f64> {
        self.tally(worker).and_then(|t| t.accuracy())
    }

    /// Number of workers with at least one recorded gold answer.
    pub fn workers(&self) -> usize {
        self.tallies.len()
    }

    /// Build an [`AccuracyRegistry`] from the estimates, for use by the verification model.
    ///
    /// The registry receives the *Laplace-smoothed* estimate `(correct + 1) / (total + 2)`
    /// (the rule of succession) rather than the raw fraction: the verification model turns
    /// accuracies into log-odds vote weights, and a worker who happened to score 5/5 on a
    /// handful of gold questions must not be handed a near-infinite weight that lets their
    /// single wrong vote overrule every other worker. The raw fraction stays available via
    /// [`SamplingEstimator::accuracy_of`] for reporting (Figure 15 uses it).
    pub fn to_registry(&self) -> AccuracyRegistry {
        let mut registry = AccuracyRegistry::new();
        for (worker, tally) in &self.tallies {
            if let Some(smoothed) = tally.smoothed_accuracy() {
                registry.set(*worker, smoothed, tally.total);
            }
        }
        registry
    }

    /// Aggregate statistics over all estimated accuracies.
    pub fn stats(&self) -> Result<AccuracyStats> {
        let accuracies: Vec<f64> = self.tallies.values().filter_map(|t| t.accuracy()).collect();
        AccuracyStats::from_accuracies(&accuracies)
    }

    /// Compare these estimates against reference accuracies (e.g. the 100 %-sampling
    /// estimates of Figure 15), producing the mean accuracy `μ_j` and mean absolute error
    /// `err_j` the paper plots per sampling rate.
    pub fn report_against(&self, reference: &BTreeMap<WorkerId, f64>) -> SamplingReport {
        let mut mean = 0.0;
        let mut err = 0.0;
        let mut matched = 0usize;
        for (worker, tally) in &self.tallies {
            if let Some(a) = tally.accuracy() {
                mean += a;
                if let Some(r) = reference.get(worker) {
                    err += (a - r).abs();
                    matched += 1;
                }
            }
        }
        let count = self.tallies.len();
        SamplingReport {
            mean_accuracy: if count > 0 { mean / count as f64 } else { 0.0 },
            mean_absolute_error: if matched > 0 {
                err / matched as f64
            } else {
                0.0
            },
            workers: count,
        }
    }
}

/// Aggregate sampling quality, matching the quantities of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingReport {
    /// Mean estimated accuracy `μ_j = (1/n) Σ a_i^j`.
    pub mean_accuracy: f64,
    /// Mean absolute error `err_j = (1/n) Σ |a_i^j − a_i^100|` against the reference.
    pub mean_absolute_error: f64,
    /// Number of workers contributing to the report.
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_new() {
        let via_new = SamplingPlan::new(DEFAULT_BATCH_SIZE, DEFAULT_SAMPLING_RATE).unwrap();
        assert_eq!(SamplingPlan::paper_default(), via_new);
    }

    #[test]
    fn plan_validation() {
        assert!(SamplingPlan::new(0, 0.2).is_err());
        assert!(SamplingPlan::new(10, 0.0).is_err());
        assert!(SamplingPlan::new(10, 1.5).is_err());
        assert!(SamplingPlan::new(10, f64::NAN).is_err());
        assert!(SamplingPlan::new(10, 1.0).is_ok());
    }

    #[test]
    fn paper_default_plan_matches_deployment_parameters() {
        let plan = SamplingPlan::paper_default();
        assert_eq!(plan.batch_size(), 100);
        assert_eq!(plan.gold_count(), 20);
        assert_eq!(plan.real_count(), 80);
        assert!((plan.rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn gold_positions_are_spread_and_unique() {
        let plan = SamplingPlan::new(100, 0.2).unwrap();
        let positions = plan.gold_positions();
        assert_eq!(positions.len(), 20);
        let mut sorted = positions.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "gold positions must be unique");
        assert!(positions.iter().all(|&p| p < 100));
        // Spread: neighbouring gold questions are roughly batch/count apart.
        for w in positions.windows(2) {
            assert!(w[1] - w[0] >= 4 && w[1] - w[0] <= 6);
        }
        assert!(plan.is_gold(positions[3]));
        assert!(!plan.is_gold(positions[3] + 1));
    }

    #[test]
    fn tiny_batches_always_get_at_least_one_gold_question() {
        let plan = SamplingPlan::new(3, 0.05).unwrap();
        assert_eq!(plan.gold_count(), 1);
        let plan = SamplingPlan::new(1, 1.0).unwrap();
        assert_eq!(plan.gold_count(), 1);
        assert_eq!(plan.real_count(), 0);
    }

    #[test]
    fn estimator_tracks_per_worker_accuracy() {
        let mut est = SamplingEstimator::new();
        let truth = Label::from("pos");
        let wrong = Label::from("neg");
        for i in 0..8 {
            let answer = if i < 6 { &truth } else { &wrong };
            est.record(WorkerId(1), QuestionId(i), answer, &truth);
        }
        for i in 0..4 {
            est.record(WorkerId(2), QuestionId(i), &truth, &truth);
        }
        assert_eq!(est.workers(), 2);
        assert!((est.accuracy_of(WorkerId(1)).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(est.accuracy_of(WorkerId(2)), Some(1.0));
        assert_eq!(est.accuracy_of(WorkerId(3)), None);
        assert_eq!(
            est.tally(WorkerId(1)).unwrap(),
            GoldTally {
                correct: 6,
                total: 8
            }
        );

        let registry = est.to_registry();
        assert_eq!(registry.len(), 2);
        // The registry receives Laplace-smoothed estimates, so even the perfect worker's
        // log-odds stay finite and bounded by the evidence (4/4 gold -> 5/6).
        let perfect = registry.get(WorkerId(2)).unwrap();
        assert!(perfect.log_odds.is_finite());
        assert!((perfect.accuracy - 5.0 / 6.0).abs() < 1e-12);

        let stats = est.stats().unwrap();
        assert!((stats.mean - 0.875).abs() < 1e-12);
    }

    #[test]
    fn report_against_reference() {
        let mut est = SamplingEstimator::new();
        let truth = Label::from("t");
        let wrong = Label::from("f");
        // Worker 1: 1/2 correct; Worker 2: 2/2 correct.
        est.record(WorkerId(1), QuestionId(0), &truth, &truth);
        est.record(WorkerId(1), QuestionId(1), &wrong, &truth);
        est.record(WorkerId(2), QuestionId(0), &truth, &truth);
        est.record(WorkerId(2), QuestionId(1), &truth, &truth);
        let mut reference = BTreeMap::new();
        reference.insert(WorkerId(1), 0.6);
        reference.insert(WorkerId(2), 0.9);
        let report = est.report_against(&reference);
        assert_eq!(report.workers, 2);
        assert!((report.mean_accuracy - 0.75).abs() < 1e-12);
        assert!((report.mean_absolute_error - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_estimator_has_no_stats() {
        let est = SamplingEstimator::new();
        assert!(est.stats().is_err());
        let report = est.report_against(&BTreeMap::new());
        assert_eq!(report.workers, 0);
        assert_eq!(report.mean_accuracy, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The plan always injects between 1 and B gold questions at valid, unique positions.
        #[test]
        fn plan_positions_are_valid(batch in 1usize..500, rate in 0.01f64..1.0) {
            let plan = SamplingPlan::new(batch, rate).unwrap();
            prop_assert!(plan.gold_count() >= 1);
            prop_assert!(plan.gold_count() <= batch);
            prop_assert_eq!(plan.gold_count() + plan.real_count(), batch);
            let mut positions = plan.gold_positions().to_vec();
            prop_assert!(positions.iter().all(|&p| p < batch));
            positions.dedup();
            prop_assert_eq!(positions.len(), plan.gold_count());
        }

        /// The estimator's accuracy is always the exact fraction of correct gold answers.
        #[test]
        fn estimator_fraction_is_exact(correct in 0usize..50, wrong in 0usize..50) {
            prop_assume!(correct + wrong > 0);
            let mut est = SamplingEstimator::new();
            let truth = Label::from("t");
            let not = Label::from("f");
            for i in 0..correct {
                est.record(WorkerId(9), QuestionId(i as u64), &truth, &truth);
            }
            for i in 0..wrong {
                est.record(WorkerId(9), QuestionId((correct + i) as u64), &not, &truth);
            }
            let a = est.accuracy_of(WorkerId(9)).unwrap();
            let expect = correct as f64 / (correct + wrong) as f64;
            prop_assert!((a - expect).abs() < 1e-12);
        }
    }
}
