//! The quality-sensitive answering model facade: one object bundling the prediction model,
//! the probability-based verifier, the online-termination policy and the cost model, as the
//! crowdsourcing engine consumes them (Algorithm 1).

use serde::{Deserialize, Serialize};

use crate::economics::CostModel;
use crate::error::Result;
use crate::online::{OnlineProcessor, TerminationStrategy};
use crate::prediction::PredictionModel;
use crate::types::Observation;
use crate::verification::probabilistic::{ProbabilisticVerifier, VerificationResult};

/// A plan for one HIT: how many workers to request and what it will cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerPlan {
    /// Number of workers to assign (always odd).
    pub workers: u64,
    /// The user-required accuracy the plan was built for.
    pub required_accuracy: f64,
    /// The expected accuracy `E[P_{n/2}]` the plan achieves.
    pub expected_accuracy: f64,
    /// The price of the HIT under the configured cost model.
    pub cost: f64,
}

/// The complete quality-sensitive answering model (§1: "the core part of CDAS").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualitySensitiveModel {
    prediction: PredictionModel,
    verifier: ProbabilisticVerifier,
    termination: TerminationStrategy,
    cost: CostModel,
}

impl QualitySensitiveModel {
    /// Build a model from the population mean accuracy `μ`, using the paper's recommended
    /// defaults elsewhere: probabilistic verification with per-observation domain
    /// estimation, ExpMax early termination, and the default AMT-style cost model.
    pub fn new(mean_accuracy: f64) -> Result<Self> {
        Ok(QualitySensitiveModel {
            prediction: PredictionModel::new(mean_accuracy)?,
            verifier: ProbabilisticVerifier::new(),
            termination: TerminationStrategy::ExpMax,
            cost: CostModel::default(),
        })
    }

    /// Use a fixed answer-domain size (e.g. 3 for sentiment labels).
    pub fn with_domain_size(mut self, m: usize) -> Self {
        self.verifier = ProbabilisticVerifier::with_domain_size(m);
        self
    }

    /// Change the early-termination strategy.
    pub fn with_termination(mut self, strategy: TerminationStrategy) -> Self {
        self.termination = strategy;
        self
    }

    /// Change the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The underlying prediction model.
    pub fn prediction(&self) -> &PredictionModel {
        &self.prediction
    }

    /// The underlying probabilistic verifier.
    pub fn verifier(&self) -> &ProbabilisticVerifier {
        &self.verifier
    }

    /// The configured termination strategy.
    pub fn termination(&self) -> TerminationStrategy {
        self.termination
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Phase 1 of Algorithm 1: plan a HIT for the required accuracy `c`.
    pub fn plan(&self, c: f64) -> Result<WorkerPlan> {
        let workers = self.prediction.refined_workers(c)?;
        let expected_accuracy = self.prediction.expected_accuracy(workers)?;
        Ok(WorkerPlan {
            workers,
            required_accuracy: c,
            expected_accuracy,
            cost: self.cost.hit_cost(workers),
        })
    }

    /// Phase 2 of Algorithm 1 (offline variant): verify a complete observation.
    pub fn verify(&self, observation: &Observation) -> Result<VerificationResult> {
        self.verifier.verify(observation)
    }

    /// Phase 2 of Algorithm 1 (online variant): build an online processor for a HIT planned
    /// with [`QualitySensitiveModel::plan`].
    pub fn online_processor(&self, plan: &WorkerPlan) -> Result<OnlineProcessor> {
        let processor = OnlineProcessor::new(
            plan.workers as usize,
            self.prediction.mean_accuracy(),
            self.termination,
        )?;
        Ok(
            match self.verifier.effective_domain(&Observation::empty()) {
                // A fixed domain configured on the verifier propagates to the online processor;
                // the estimated case keeps per-observation estimation.
                m if self.has_fixed_domain() => processor.with_domain_size(m),
                _ => processor,
            },
        )
    }

    fn has_fixed_domain(&self) -> bool {
        // The verifier reports the same effective domain for an empty observation only when
        // it was constructed with a fixed size; the estimating verifier returns the floor
        // of 2 which we also treat as "not fixed" (estimation continues per observation).
        self.verifier.effective_domain(&Observation::empty()) > 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Label, Vote, WorkerId};

    #[test]
    fn plan_meets_required_accuracy_and_prices_the_hit() {
        let model = QualitySensitiveModel::new(0.75).unwrap();
        let plan = model.plan(0.95).unwrap();
        assert_eq!(plan.workers % 2, 1);
        assert!(plan.expected_accuracy >= 0.95);
        assert!((plan.cost - model.cost_model().hit_cost(plan.workers)).abs() < 1e-12);
        assert_eq!(plan.required_accuracy, 0.95);
    }

    #[test]
    fn verify_delegates_to_probabilistic_verifier() {
        let model = QualitySensitiveModel::new(0.75)
            .unwrap()
            .with_domain_size(3);
        let obs = Observation::from_votes(vec![
            Vote::new(WorkerId(1), Label::from("pos"), 0.54),
            Vote::new(WorkerId(2), Label::from("pos"), 0.31),
            Vote::new(WorkerId(3), Label::from("neu"), 0.49),
            Vote::new(WorkerId(4), Label::from("neg"), 0.73),
            Vote::new(WorkerId(5), Label::from("pos"), 0.46),
        ]);
        assert_eq!(model.verify(&obs).unwrap().best().as_str(), "neg");
    }

    #[test]
    fn online_processor_uses_plan_and_strategy() {
        let model = QualitySensitiveModel::new(0.8)
            .unwrap()
            .with_domain_size(3)
            .with_termination(TerminationStrategy::ExpMax);
        assert_eq!(model.termination(), TerminationStrategy::ExpMax);
        let plan = model.plan(0.9).unwrap();
        let mut processor = model.online_processor(&plan).unwrap();
        let mut terminated_after = None;
        for i in 0..plan.workers {
            let o = processor
                .consume(Vote::new(WorkerId(i), Label::from("good"), 0.85))
                .unwrap();
            if o.terminated {
                terminated_after = Some(o.answers_received);
                break;
            }
        }
        let consumed = terminated_after.unwrap_or(plan.workers as usize);
        assert!(consumed <= plan.workers as usize);
        // ExpMax on unanimous answers should save workers relative to the plan when the
        // plan involves more than one worker.
        if plan.workers > 3 {
            assert!(consumed < plan.workers as usize);
        }
    }

    #[test]
    fn builders_are_chainable() {
        let model = QualitySensitiveModel::new(0.7)
            .unwrap()
            .with_domain_size(5)
            .with_termination(TerminationStrategy::MinMax)
            .with_cost_model(CostModel::new(0.02, 0.002).unwrap());
        assert_eq!(model.termination(), TerminationStrategy::MinMax);
        assert!((model.cost_model().worker_fee - 0.02).abs() < 1e-12);
        assert!((model.prediction().mean_accuracy() - 0.7).abs() < 1e-12);
        let plan = model.plan(0.9).unwrap();
        assert!(plan.cost > 0.0);
    }

    #[test]
    fn invalid_mean_accuracy_is_rejected() {
        assert!(QualitySensitiveModel::new(0.5).is_err());
        assert!(QualitySensitiveModel::new(0.3).is_err());
    }
}
